#include "src/htm/elided_lock.h"

#include <mutex>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

// All tests pin the emulated engine so behaviour is host-independent; the
// hardware path shares all control flow above RtmBegin/RtmEnd.
class ElidedLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = GlobalEmulatedRtmConfig();
    RtmForceUsable(0);
  }
  void TearDown() override {
    GlobalEmulatedRtmConfig() = saved_;
    RtmForceUsable(-1);
  }
  EmulatedRtmConfig saved_;
};

TEST_F(ElidedLockTest, BasicLockUnlock) {
  ElidedLock<SpinLock> lock;
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST_F(ElidedLockTest, MutualExclusionUnderContention) {
  GlobalEmulatedRtmConfig().abort_permille = 300;
  ElidedLock<SpinLock> lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST_F(ElidedLockTest, NoAbortInjectionMeansAllCommits) {
  GlobalEmulatedRtmConfig().abort_permille = 0;
  ElidedLock<SpinLock> lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  auto s = lock.stats().Read();
  EXPECT_EQ(s.commits, 1000u);
  EXPECT_EQ(s.fallback_acquisitions, 0u);
  EXPECT_EQ(s.TotalAborts(), 0u);
  EXPECT_DOUBLE_EQ(s.AbortRate(), 0.0);
}

TEST_F(ElidedLockTest, CertainAbortsForceFallback) {
  // Every transactional attempt aborts without the RETRY hint: the glibc
  // policy must take the fallback lock every time.
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 0;
  ElidedLock<SpinLock> lock(kGlibcElision);
  for (int i = 0; i < 500; ++i) {
    lock.lock();
    lock.unlock();
  }
  auto s = lock.stats().Read();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.fallback_acquisitions, 500u);
  EXPECT_GT(s.TotalAborts(), 0u);
  EXPECT_DOUBLE_EQ(s.AbortRate(), 1.0);
}

TEST_F(ElidedLockTest, GlibcPolicyFallsBackOnFirstNoHintAbort) {
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 0;  // capacity-style aborts
  ElidedLock<SpinLock> glibc_lock(kGlibcElision);
  glibc_lock.lock();
  glibc_lock.unlock();
  // One abort, immediate fallback: exactly 1 recorded abort.
  auto s = glibc_lock.stats().Read();
  EXPECT_EQ(s.TotalAborts(), 1u);
  EXPECT_EQ(s.fallback_acquisitions, 1u);
}

TEST_F(ElidedLockTest, TunedPolicyRetriesWithoutHint) {
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 0;
  ElidedLock<SpinLock> tuned_lock(kTunedElision);
  tuned_lock.lock();
  tuned_lock.unlock();
  // Tuned: retries max_abort_retry times beyond the first attempt.
  auto s = tuned_lock.stats().Read();
  EXPECT_EQ(s.TotalAborts(), static_cast<std::uint64_t>(kTunedElision.max_abort_retry) + 1);
  EXPECT_EQ(s.fallback_acquisitions, 1u);
}

TEST_F(ElidedLockTest, RetryHintedAbortsRetryUpToXbeginBudget) {
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 1000;  // all aborts hinted
  ElidedLock<SpinLock> lock(kTunedElision);
  lock.lock();
  lock.unlock();
  auto s = lock.stats().Read();
  EXPECT_EQ(s.TotalAborts(), static_cast<std::uint64_t>(kTunedElision.max_xbegin_retry));
  EXPECT_EQ(s.fallback_acquisitions, 1u);
}

TEST_F(ElidedLockTest, AbortCauseClassification) {
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 1000;  // all conflicts
  ElidedLock<SpinLock> lock(kGlibcElision);
  lock.lock();
  lock.unlock();
  auto s = lock.stats().Read();
  EXPECT_EQ(s.aborts_conflict, s.TotalAborts());
  EXPECT_EQ(s.aborts_capacity, 0u);
}

TEST_F(ElidedLockTest, BusyLockCountsAsExplicitAbort) {
  GlobalEmulatedRtmConfig().abort_permille = 0;  // transactions always start
  ElidedLock<SpinLock> lock(kTunedElision);
  lock.lock();  // emulated transactional hold
  std::thread contender([&lock] {
    lock.lock();  // sees the inner lock busy -> explicit aborts -> fallback
    lock.unlock();
  });
  // Give the contender time to burn its retries against the held lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();
  contender.join();
  auto s = lock.stats().Read();
  EXPECT_GT(s.aborts_explicit, 0u);
}

TEST_F(ElidedLockTest, StatsResetClearsEverything) {
  GlobalEmulatedRtmConfig().abort_permille = 500;
  ElidedLock<SpinLock> lock;
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
  }
  lock.stats().Reset();
  auto s = lock.stats().Read();
  EXPECT_EQ(s.commits + s.TotalAborts() + s.fallback_acquisitions, 0u);
}

TEST_F(ElidedLockTest, DefaultConstructiblePolicyWrappers) {
  GlibcElided<SpinLock> glibc_lock;
  TunedElided<SpinLock> tuned_lock;
  EXPECT_EQ(glibc_lock.policy().max_xbegin_retry, kGlibcElision.max_xbegin_retry);
  EXPECT_EQ(tuned_lock.policy().max_xbegin_retry, kTunedElision.max_xbegin_retry);
  glibc_lock.lock();
  glibc_lock.unlock();
  tuned_lock.lock();
  tuned_lock.unlock();
}

TEST_F(ElidedLockTest, WorksWithLockGuard) {
  ElidedLock<SpinLock> lock;
  {
    std::lock_guard<ElidedLock<SpinLock>> g(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

}  // namespace
}  // namespace cuckoo
