// Memcached semantics on KvService: TTL expiry (with an injected clock),
// cas/gets optimistic concurrency, touch, and the UNIX-socket server
// end-to-end.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

// Service with a controllable clock.
struct TimedService {
  std::shared_ptr<std::atomic<std::uint64_t>> now =
      std::make_shared<std::atomic<std::uint64_t>>(1000);
  KvService service;

  TimedService()
      : service([this] {
          KvService::Options o;
          auto clock_now = now;
          o.clock = [clock_now] { return clock_now->load(); };
          return o;
        }()) {}
};

TEST(KvTtlTest, EntryExpiresAfterDeadline) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 10 3\r\nabc\r\n", &out);  // expires at t=1010
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 3\r\nabc\r\nEND\r\n");

  ts.now->store(1009);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 3\r\nabc\r\nEND\r\n") << "one second before the deadline";

  ts.now->store(1010);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n") << "at the deadline the entry is gone";
  EXPECT_EQ(ts.service.Expirations(), 1u);
  EXPECT_EQ(ts.service.ItemCount(), 0u) << "lazy expiry reclaims the slot";
}

TEST(KvTtlTest, ZeroExptimeNeverExpires) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\nx\r\n", &out);
  ts.now->store(1000000000);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 1\r\nx\r\nEND\r\n");
}

TEST(KvTtlTest, TouchExtendsLifetime) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 10 1\r\nx\r\n", &out);
  out.clear();
  conn.Drive("touch k 100\r\n", &out);
  EXPECT_EQ(out, "TOUCHED\r\n");
  ts.now->store(1050);  // past the original deadline, inside the touched one
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 1\r\nx\r\nEND\r\n");
  ts.now->store(1101);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n");
}

TEST(KvTtlTest, TouchMissingOrExpiredIsNotFound) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("touch nope 5\r\n", &out);
  EXPECT_EQ(out, "NOT_FOUND\r\n");
  out.clear();
  conn.Drive("set k 0 1 1\r\nx\r\n", &out);
  ts.now->store(2000);
  out.clear();
  conn.Drive("touch k 5\r\n", &out);
  EXPECT_EQ(out, "NOT_FOUND\r\n") << "touching an expired entry must not resurrect it";
}

TEST(KvTtlTest, SetOverwritesExpiredEntry) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 1 1\r\na\r\n", &out);
  ts.now->store(5000);
  out.clear();
  conn.Drive("set k 0 0 1\r\nb\r\nget k\r\n", &out);
  EXPECT_EQ(out, "STORED\r\nVALUE k 0 1\r\nb\r\nEND\r\n");
}

// Regression (exptime semantics): memcached treats exptime values above 30
// days (2592000 s) as absolute UNIX timestamps, not relative TTLs.
TEST(KvTtlTest, LargeExptimeIsAbsoluteUnixTimestamp) {
  TimedService ts;  // clock starts at t=1000
  auto conn = ts.service.Connect();
  std::string out;
  const std::uint64_t deadline = 2600000;  // > 30 days => absolute timestamp
  conn.Drive("set k 0 " + std::to_string(deadline) + " 3\r\nabc\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");

  ts.now->store(deadline - 1);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 3\r\nabc\r\nEND\r\n") << "alive until the absolute deadline";

  ts.now->store(deadline);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n") << "expired exactly at the absolute timestamp, not at now+exptime";
}

TEST(KvTtlTest, AbsoluteExptimeInThePastExpiresImmediately) {
  TimedService ts;
  ts.now->store(3000000);  // later than the absolute deadline below
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 2600000 1\r\nx\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n") << "an already-past absolute deadline is immediately expired";
}

TEST(KvTtlTest, ThirtyDaysExactlyIsStillRelative) {
  TimedService ts;  // t=1000
  auto conn = ts.service.Connect();
  std::string out;
  const std::uint64_t thirty_days = 2592000;
  conn.Drive("set k 0 " + std::to_string(thirty_days) + " 1\r\nx\r\n", &out);
  ts.now->store(1000 + thirty_days - 1);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 1\r\nx\r\nEND\r\n") << "<= 30 days is a relative TTL";
  ts.now->store(1000 + thirty_days);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n");
}

TEST(KvTtlTest, TouchWithAbsoluteExptime) {
  TimedService ts;
  auto conn = ts.service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\nx\r\n", &out);
  out.clear();
  conn.Drive("touch k 2600000\r\n", &out);
  EXPECT_EQ(out, "TOUCHED\r\n");
  ts.now->store(2600000);
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "END\r\n") << "touch must honour absolute-timestamp exptime too";
}

TEST(KvCasTest, GetsReturnsCasIdAndCasSucceedsWithIt) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\na\r\n", &out);
  out.clear();
  conn.Drive("gets k\r\n", &out);
  // Extract the cas id: "VALUE k 0 1 <id>\r\na\r\nEND\r\n".
  ASSERT_EQ(out.rfind("VALUE k 0 1 ", 0), 0u) << out;
  std::size_t id_start = std::string("VALUE k 0 1 ").size();
  std::size_t id_end = out.find("\r\n", id_start);
  std::string cas_id = out.substr(id_start, id_end - id_start);

  out.clear();
  conn.Drive("cas k 0 0 1 " + cas_id + "\r\nb\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 1\r\nb\r\nEND\r\n");
}

TEST(KvCasTest, StaleCasIdGetsExists) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\na\r\n", &out);
  out.clear();
  conn.Drive("cas k 0 0 1 999999\r\nz\r\n", &out);
  EXPECT_EQ(out, "EXISTS\r\n");
  out.clear();
  conn.Drive("get k\r\n", &out);
  EXPECT_EQ(out, "VALUE k 0 1\r\na\r\nEND\r\n") << "failed cas must not modify";
}

TEST(KvCasTest, CasOnMissingKeyIsNotFound) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("cas nothing 0 0 1 1\r\nx\r\n", &out);
  EXPECT_EQ(out, "NOT_FOUND\r\n");
}

TEST(KvCasTest, ConcurrentCasExactlyOneWinsPerRound) {
  // The canonical cas use: N threads read-modify-write the same counter key;
  // every increment must land exactly once.
  KvService service;
  {
    auto conn = service.Connect();
    std::string out;
    conn.Drive("set counter 0 0 1\r\n0\r\n", &out);
  }
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service] {
      auto conn = service.Connect();
      for (int done = 0; done < kIncrementsPerThread;) {
        std::string out;
        conn.Drive("gets counter\r\n", &out);
        // Parse "VALUE counter 0 <len> <cas>\r\n<num>\r\nEND\r\n".
        std::size_t header_end = out.find("\r\n");
        ASSERT_NE(header_end, std::string::npos);
        std::string header = out.substr(0, header_end);
        std::size_t cas_pos = header.rfind(' ');
        std::string cas_id = header.substr(cas_pos + 1);
        std::size_t body_end = out.find("\r\n", header_end + 2);
        long value = std::stol(out.substr(header_end + 2, body_end - header_end - 2));
        std::string next = std::to_string(value + 1);
        out.clear();
        conn.Drive("cas counter 0 0 " + std::to_string(next.size()) + " " + cas_id + "\r\n" +
                       next + "\r\n",
                   &out);
        if (out == "STORED\r\n") {
          ++done;
        } else {
          ASSERT_EQ(out, "EXISTS\r\n");  // lost the race; retry
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto conn = service.Connect();
  std::string out;
  conn.Drive("get counter\r\n", &out);
  std::string expected = std::to_string(kThreads * kIncrementsPerThread);
  EXPECT_NE(out.find("\r\n" + expected + "\r\n"), std::string::npos) << out;
}

// ---- Socket server ----------------------------------------------------------

TEST(SocketServerTest, EndToEndOverUnixSocket) {
  KvService service;
  SocketServer server(&service, "/tmp/cuckoo_kv_test_e2e.sock");
  ASSERT_TRUE(server.Start());
  {
    SocketClient client(server.path());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("set hello 0 0 5\r\nworld\r\n", "\r\n"), "STORED\r\n");
    EXPECT_EQ(client.RoundTrip("get hello\r\n", "END\r\n"),
              "VALUE hello 0 5\r\nworld\r\nEND\r\n");
    EXPECT_EQ(client.RoundTrip("delete hello\r\n", "\r\n"), "DELETED\r\n");
  }
  server.Stop();
  EXPECT_EQ(server.ConnectionsAccepted(), 1u);
}

TEST(SocketServerTest, ManyConcurrentClients) {
  KvService service;
  SocketServer server(&service, "/tmp/cuckoo_kv_test_many.sock");
  ASSERT_TRUE(server.Start());
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 300;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      SocketClient client(server.path());
      ASSERT_TRUE(client.connected());
      for (int i = 0; i < kOpsPerClient; ++i) {
        std::string key = "k" + std::to_string(c) + "_" + std::to_string(i);
        ASSERT_EQ(client.RoundTrip("set " + key + " 0 0 2\r\nhi\r\n", "\r\n"), "STORED\r\n");
        ASSERT_EQ(client.RoundTrip("get " + key + "\r\n", "END\r\n"),
                  "VALUE " + key + " 0 2\r\nhi\r\nEND\r\n");
      }
    });
  }
  for (auto& th : clients) {
    th.join();
  }
  server.Stop();
  EXPECT_EQ(service.ItemCount(), static_cast<std::size_t>(kClients * kOpsPerClient));
}

TEST(SocketServerTest, StopWithConnectedIdleClient) {
  // Stop() must not hang on a client that is connected but silent.
  KvService service;
  SocketServer server(&service, "/tmp/cuckoo_kv_test_idle.sock");
  ASSERT_TRUE(server.Start());
  SocketClient idle(server.path());
  ASSERT_TRUE(idle.connected());
  // Give the accept loop time to register the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();  // would deadlock without the fd-shutdown path
  SUCCEED();
}

TEST(SocketServerTest, RestartOnSamePath) {
  KvService service;
  {
    SocketServer server(&service, "/tmp/cuckoo_kv_test_restart.sock");
    ASSERT_TRUE(server.Start());
    server.Stop();
  }
  SocketServer again(&service, "/tmp/cuckoo_kv_test_restart.sock");
  EXPECT_TRUE(again.Start());
  again.Stop();
}

}  // namespace
}  // namespace cuckoo
