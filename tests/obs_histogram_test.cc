// Unit tests for the mergeable per-thread latency histogram (src/obs/):
// bucket math, percentile error bounds against an exact sorted-sample
// oracle, merge associativity, clamping at the extremes of the uint64
// range, reset semantics, and concurrent record/snapshot safety.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/obs/histogram.h"

namespace cuckoo {
namespace obs {
namespace {

constexpr double kMaxRelativeError = 1.0 / 16.0;  // 16 sub-buckets per major

TEST(HistBucketTest, ExactBucketsBelowSixteen) {
  for (std::uint64_t v = 0; v < kHistSubBuckets; ++v) {
    EXPECT_EQ(HistBucketFor(v), v);
    EXPECT_EQ(HistBucketUpperBound(v), v);
  }
}

TEST(HistBucketTest, UpperBoundIsInverseOfBucketFor) {
  // For every bucket, its upper bound must map back into it, and the next
  // value up must map to a strictly later bucket.
  for (std::size_t i = 0; i < kHistBucketCount; ++i) {
    const std::uint64_t hi = HistBucketUpperBound(i);
    EXPECT_EQ(HistBucketFor(hi), i) << "upper bound " << hi;
    if (hi != std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_GT(HistBucketFor(hi + 1), i);
    }
  }
}

TEST(HistBucketTest, MonotonicAndWithinErrorBound) {
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < (1u << 20); v = v + 1 + v / 7) {
    const std::size_t b = HistBucketFor(v);
    EXPECT_GE(b, prev) << "bucket index not monotone at " << v;
    prev = b;
    const std::uint64_t hi = HistBucketUpperBound(b);
    EXPECT_GE(hi, v);
    EXPECT_LE(static_cast<double>(hi - v), kMaxRelativeError * static_cast<double>(v) + 1.0)
        << "bucket " << b << " too wide for value " << v;
  }
}

TEST(HistBucketTest, FullRangeClamping) {
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_LT(HistBucketFor(top), kHistBucketCount);
  EXPECT_EQ(HistBucketUpperBound(HistBucketFor(top)), top);

  Histogram h;
  h.Record(0);
  h.Record(top);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_EQ(s.Max(), top);
  // Percentiles never exceed the exact observed max, even from the widest
  // top bucket.
  EXPECT_LE(s.P999(), top);
  EXPECT_EQ(s.Percentile(1.0), top);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.P50(), 0u);
  EXPECT_EQ(s.Max(), 0u);
}

// The core accuracy contract: reported percentiles sit within 6.25% above
// the exact sorted-sample value (never below its bucket's content).
TEST(HistogramTest, PercentilesMatchSortedOracleWithinBound) {
  Xorshift128Plus rng(0x915c0ffee);  // any fixed seed
  Histogram h;
  std::vector<std::uint64_t> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    // Skewed latencies spanning several decades, like real op timings.
    const std::uint64_t v = 50 + (rng.Next() % (std::uint64_t{1} << (10 + i % 14)));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.Count(), samples.size());
  EXPECT_EQ(s.Max(), samples.back());

  std::uint64_t exact_sum = 0;
  for (std::uint64_t v : samples) {
    exact_sum += v;
  }
  EXPECT_DOUBLE_EQ(s.Mean(), static_cast<double>(exact_sum) /
                                 static_cast<double>(samples.size()));

  for (double q : {0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const std::uint64_t exact =
        samples[static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1))];
    const std::uint64_t reported = s.Percentile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(exact) * (1.0 + kMaxRelativeError) + 1.0)
        << "q=" << q << " exact=" << exact << " reported=" << reported;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndMatchesWhole) {
  Xorshift128Plus rng(7);
  Histogram ha;
  Histogram hb;
  Histogram hc;
  Histogram whole;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t v = rng.Next() % 1000000;
    (i % 3 == 0 ? ha : i % 3 == 1 ? hb : hc).Record(v);
    whole.Record(v);
  }
  const HistogramSnapshot a = ha.Snapshot();
  const HistogramSnapshot b = hb.Snapshot();
  const HistogramSnapshot c = hc.Snapshot();

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);

  const HistogramSnapshot w = whole.Snapshot();
  for (const HistogramSnapshot* m : {&ab_c, &a_bc}) {
    EXPECT_EQ(m->counts, w.counts);
    EXPECT_EQ(m->total, w.total);
    EXPECT_EQ(m->sum, w.sum);
    EXPECT_EQ(m->max, w.max);
  }
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    h.Record(v * 37);
  }
  ASSERT_EQ(h.Snapshot().Count(), 1000u);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.Max(), 0u);
}

TEST(SampleGateTest, FiresOncePerPeriod) {
  int fired = 0;
  for (int i = 0; i < 256; ++i) {
    if (SampleGate<6>::Tick()) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 256 / 64);
}

// Concurrent recorders + a snapshotting reader: run under TSan via the
// concurrency label. Each recorder owns its shard, so no count is lost.
TEST(HistogramConcurrentTest, RecordersAndSnapshotterDontRace) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> team;
  team.reserve(kThreads + 1);
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot s = h.Snapshot();
      // Monotone non-decreasing totals while only recording happens.
      EXPECT_GE(s.Count(), last);
      last = s.Count();
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i * 13 + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  EXPECT_EQ(h.Snapshot().Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace cuckoo
