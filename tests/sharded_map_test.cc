#include "src/cuckoo/sharded_map.h"

#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = ShardedMap<std::uint64_t, std::uint64_t>;

TEST(ShardedMapTest, BasicRoundTrip) {
  Map map;
  EXPECT_EQ(map.shard_count(), 16u);
  EXPECT_EQ(map.Insert(1, 10), InsertResult::kOk);
  EXPECT_EQ(map.Insert(1, 20), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(map.Update(1, 30));
  EXPECT_EQ(map.Upsert(1, 40), InsertResult::kKeyExists);
  map.Find(1, &v);
  EXPECT_EQ(v, 40u);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_EQ(map.Size(), 0u);
}

TEST(ShardedMapTest, KeysSpreadAcrossShards) {
  Map::Options o;
  o.shard_count_log2 = 3;  // 8 shards
  o.slots_per_shard_log2 = 10;
  Map map(o);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  EXPECT_EQ(map.Size(), 4000u);
  // With ~500 keys per shard expected, imbalance should be modest.
  EXPECT_LT(map.ShardImbalance(), 1.5);
}

TEST(ShardedMapTest, ModelEquivalence) {
  Map::Options o;
  o.shard_count_log2 = 2;
  o.slots_per_shard_log2 = 10;
  Map map(o);
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  Xorshift128Plus rng(77);
  for (int i = 0; i < 40000; ++i) {
    std::uint64_t key = rng.NextBelow(2000);
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(4)) {
      case 0: {
        bool fresh = model.emplace(key, value).second;
        ASSERT_EQ(map.Insert(key, value) == InsertResult::kOk, fresh);
        break;
      }
      case 1: {
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 2:
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      case 3: {
        std::uint64_t v;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
}

TEST(ShardedMapTest, ConcurrentWriters) {
  Map map;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

// Regression (shard collapse): Hash is a template parameter, so users may
// supply hashers that only populate the low 32 bits. Shard selection used the
// raw top-16 bits (`h >> 48`), which are all zero for such a hasher — every
// key landed in shard 0. Selection must mix the hash first.
struct ThirtyTwoBitHash {
  std::uint64_t operator()(std::uint64_t key) const noexcept {
    // A decent 32-bit hash (murmur-style fmix32), but the upper 32 bits of
    // the returned value are always zero.
    std::uint32_t x = static_cast<std::uint32_t>(key ^ (key >> 32));
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    x *= 0xc2b2ae35u;
    x ^= x >> 16;
    return x;
  }
};

TEST(ShardedMapTest, ThirtyTwoBitHashStillSpreadsAcrossShards) {
  using NarrowMap = ShardedMap<std::uint64_t, std::uint64_t, ThirtyTwoBitHash>;
  NarrowMap::Options o;
  o.shard_count_log2 = 3;  // 8 shards
  o.slots_per_shard_log2 = 10;
  NarrowMap map(o);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk) << i;
  }
  EXPECT_EQ(map.Size(), 4000u);
  // Pre-fix, all 4000 keys funnel into shard 0: imbalance == shard count (8)
  // — and the insert loop above would refuse long before 4000 keys anyway
  // (one shard holds only 1024 slots). Post-fix the spread is near-uniform.
  EXPECT_LT(map.ShardImbalance(), 1.5);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i);
  }
}

TEST(ShardedMapTest, ShardingLosesGlobalLoadBalance) {
  // The structural cost sharding pays vs a single cuckoo table: the fullest
  // shard caps total fill. Fill until the first shard refuses.
  Map::Options o;
  o.shard_count_log2 = 4;
  o.slots_per_shard_log2 = 8;  // 256 slots per shard
  Map map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  // A single table reaches ~0.978 (B=8); a sharded one stops at the first
  // full shard, strictly earlier.
  EXPECT_LT(map.LoadFactor(), 0.978);
  EXPECT_GT(map.ShardImbalance(), 1.0);
}

}  // namespace
}  // namespace cuckoo
