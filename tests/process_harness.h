// Process-level test harness: fork/exec the real cuckoo_kv_server binary,
// wait for its READY banner, and talk to it over its unix or TCP socket.
// Shared by the crash-injection suite (tests/crash_recovery_test.cc) and the
// replication failover/conformance suites (tests/repl_*_test.cc).
//
// Every consumer must be compiled with KV_SERVER_BINARY pointing at the
// server executable (see tests/CMakeLists.txt).
#ifndef TESTS_PROCESS_HARNESS_H_
#define TESTS_PROCESS_HARNESS_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"

#ifndef KV_SERVER_BINARY
#error "KV_SERVER_BINARY must point at the cuckoo_kv_server executable"
#endif

namespace cuckoo {
namespace testsupport {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_proc_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

class ServerProcess {
 public:
  // Starts cuckoo_kv_server and blocks until it prints READY (plus whichever
  // of the METRICS/VLOG/REPL banner lines the flags imply), so the process
  // is fully serving before the constructor returns.
  ServerProcess(const std::string& wal_dir, const std::string& sock_path,
                const std::string& fsync_policy,
                const std::vector<std::string>& extra_args = {}) {
    Launch(wal_dir, sock_path, fsync_policy, extra_args);  // ASSERTs live there
  }

 private:
  void Launch(const std::string& wal_dir, const std::string& sock_path,
              const std::string& fsync_policy,
              const std::vector<std::string>& extra_args) {
    sock_path_ = sock_path;
    ::unlink(sock_path.c_str());
    int out_pipe[2];
    ASSERT_EQ(::pipe(out_pipe), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      std::vector<std::string> args = {KV_SERVER_BINARY, "--wal-dir=" + wal_dir,
                                       "--fsync-policy=" + fsync_policy,
                                       "--unix=" + sock_path, "--event-threads=2"};
      for (const std::string& a : extra_args) {
        args.push_back(a);
      }
      std::vector<char*> argv;
      for (std::string& a : args) {
        argv.push_back(a.data());
      }
      argv.push_back(nullptr);
      ::execv(KV_SERVER_BINARY, argv.data());
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    stdout_fd_ = out_pipe[0];
    // Wait for the READY line (recovery may take a moment), then consume the
    // banner lines the flags imply, in the order server_main prints them:
    //   READY <tcp_port> <unix_path>
    //   METRICS <port>                 (--metrics-port)
    //   VLOG <dir> ...                 (--vlog-dir)
    //   REPL <role> ack=<level>        (--wal-dir, i.e. always here)
    const std::string line = ReadStdoutLine();
    ASSERT_EQ(line.rfind("READY ", 0), 0u) << "server said: " << line;
    tcp_port_ = std::atoi(line.c_str() + 6);
    bool has_metrics = false;
    bool has_vlog = false;
    for (const std::string& a : extra_args) {
      has_metrics |= a.rfind("--metrics-port", 0) == 0;
      has_vlog |= a.rfind("--vlog-dir", 0) == 0;
    }
    if (has_metrics) {
      const std::string metrics = ReadStdoutLine();
      ASSERT_EQ(metrics.rfind("METRICS ", 0), 0u) << "server said: " << metrics;
      metrics_port_ = std::atoi(metrics.c_str() + 8);
      ASSERT_GT(metrics_port_, 0);
    }
    if (has_vlog) {
      const std::string vlog = ReadStdoutLine();
      ASSERT_EQ(vlog.rfind("VLOG ", 0), 0u) << "server said: " << vlog;
    }
    const std::string repl = ReadStdoutLine();
    ASSERT_EQ(repl.rfind("REPL ", 0), 0u) << "server said: " << repl;
    repl_role_ = repl.substr(5, repl.find(' ', 5) - 5);
  }

  std::string ReadStdoutLine() {
    std::string line;
    char c = 0;
    while (::read(stdout_fd_, &c, 1) == 1 && c != '\n') {
      line.push_back(c);
    }
    return line;
  }

 public:
  ~ServerProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    if (stdout_fd_ >= 0) {
      ::close(stdout_fd_);
    }
  }

  // SIGKILL: simulated crash. Returns once the process is reaped.
  void Kill9() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    EXPECT_TRUE(WIFSIGNALED(status));
    pid_ = -1;
  }

  // SIGTERM: graceful shutdown; asserts a clean exit 0.
  void Terminate() {
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    EXPECT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 0);
    pid_ = -1;
  }

  const std::string& sock_path() const { return sock_path_; }
  int tcp_port() const { return tcp_port_; }
  int metrics_port() const { return metrics_port_; }
  // "primary" or "replica" as announced at startup (runtime promotion via
  // `replicaof none` does not update this).
  const std::string& repl_role() const { return repl_role_; }

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  int tcp_port_ = 0;
  int metrics_port_ = 0;
  std::string sock_path_;
  std::string repl_role_;
};

class Client {
 public:
  // Connect over the unix socket.
  explicit Client(const std::string& sock_path) { ConnectUnix(sock_path); }
  // Connect over loopback TCP (how replicas are reached in cluster tests).
  explicit Client(int tcp_port) { ConnectTcp(tcp_port); }
  ~Client() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool connected() const { return fd_ >= 0; }

  // Send a command and read until the response ends with `terminator`.
  // Returns the full response, or "" on EOF/reset (server died mid-command).
  std::string Roundtrip(const std::string& command, const std::string& terminator) {
    if (!WriteAll(command)) {
      return "";
    }
    std::string response;
    char buf[4096];
    while (response.size() < terminator.size() ||
           response.compare(response.size() - terminator.size(), terminator.size(),
                            terminator) != 0) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        return "";
      }
      response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  }

  bool Set(const std::string& key, const std::string& value) {
    return Roundtrip("set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" +
                         value + "\r\n",
                     "\r\n") == "STORED\r\n";
  }

  // Returns the value for `key`, or "" if missing.
  std::string Get(const std::string& key) {
    const std::string response = Roundtrip("get " + key + "\r\n", "END\r\n");
    const std::size_t data_start = response.find("\r\n");
    if (response.rfind("VALUE ", 0) != 0 || data_start == std::string::npos) {
      return "";
    }
    const std::size_t data_end = response.rfind("\r\nEND\r\n");
    return response.substr(data_start + 2, data_end - data_start - 2);
  }

 private:
  void ConnectUnix(const std::string& sock_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock_path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect " << sock_path << ": " << std::strerror(errno);
  }

  void ConnectTcp(int tcp_port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect 127.0.0.1:" << tcp_port << ": " << std::strerror(errno);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  bool WriteAll(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
};

// Fetch a path from the server's metrics HTTP endpoint (plain HTTP/1.0 over
// loopback TCP). Returns the raw response, or "" on any socket failure.
inline std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Extracts the value of "STAT <name> <value>\r\n" from a stats response, or
// -1 if the line is absent.
inline long long StatValue(const std::string& stats, const std::string& name) {
  const std::string needle = "STAT " + name + " ";
  const std::size_t pos = stats.find(needle);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(stats.c_str() + pos + needle.size());
}

}  // namespace testsupport
}  // namespace cuckoo

#endif  // TESTS_PROCESS_HARNESS_H_
