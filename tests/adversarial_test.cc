// Adversarial and failure-injection tests: degenerate hash functions,
// forced-expansion loops on tiny tables, abort storms on the emulated RTM
// engine, and sustained churn at the capacity edge.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

// Hash that maps every key to the same value: all keys share one bucket pair.
struct ConstantHash {
  std::uint64_t operator()(std::uint64_t) const noexcept { return 0x1234567890abcdefull; }
};

TEST(AdversarialTest, ConstantHashDegradesGracefully) {
  // With one bucket pair, a B=8 table can hold at most 16 distinct keys.
  // Expansion cannot help (same two buckets at every size), so the table must
  // report kTableFull — not loop forever or corrupt itself.
  CuckooMap<std::uint64_t, std::uint64_t, ConstantHash>::Options o;
  o.initial_bucket_count_log2 = 8;
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t, ConstantHash> map(o);
  std::uint64_t inserted = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (map.Insert(i, i) == InsertResult::kOk) {
      ++inserted;
    }
  }
  EXPECT_EQ(inserted, 16u);
  EXPECT_EQ(map.Size(), 16u);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
  }
  EXPECT_FALSE(map.Find(50, &v));
  // All 16 keys collide on one tag; erase/reinsert still works.
  EXPECT_TRUE(map.Erase(3));
  EXPECT_EQ(map.Insert(99, 99), InsertResult::kOk);
}

// Hash with only 4 distinct outputs: extreme clustering, but expansion can
// still make progress because the cluster spreads across doublings? It
// cannot — buckets derive from the same 4 hashes — so capacity is bounded by
// 4 pairs x 2 buckets x B slots.
struct FourValueHash {
  std::uint64_t operator()(std::uint64_t key) const noexcept {
    return Mix64(key % 4);
  }
};

TEST(AdversarialTest, FewDistinctHashesBoundCapacity) {
  CuckooMap<std::uint64_t, std::uint64_t, FourValueHash>::Options o;
  o.initial_bucket_count_log2 = 10;
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t, FourValueHash> map(o);
  std::uint64_t inserted = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (map.Insert(i, i) == InsertResult::kOk) {
      ++inserted;
    }
  }
  // At most 4 pairs x 16 slots; at least one pair's worth.
  EXPECT_LE(inserted, 64u);
  EXPECT_GE(inserted, 16u);
  std::uint64_t v;
  std::uint64_t findable = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (map.Find(i, &v)) {
      ++findable;
    }
  }
  EXPECT_EQ(findable, inserted) << "every accepted key must stay findable";
}

TEST(AdversarialTest, TinyTableExpansionsUnderConcurrency) {
  // 2 buckets of 8 slots initially; every few inserts double the table while
  // four writers hammer it.
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 1;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  EXPECT_GT(map.Stats().expansions, 8);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

TEST(AdversarialTest, TotalAbortStormStillMakesProgress) {
  // Emulated RTM with 100% abort injection: every elided acquisition must
  // fall back to the real lock, and the table must behave perfectly.
  RtmForceUsable(0);
  EmulatedRtmConfig saved = GlobalEmulatedRtmConfig();
  GlobalEmulatedRtmConfig().abort_permille = 1000;
  GlobalEmulatedRtmConfig().retry_hint_permille = 500;

  FlatOptions o;
  o.bucket_count_log2 = 12;
  o.lock_after_discovery = true;
  o.search_mode = SearchMode::kBfs;
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>> map(o);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < 3000; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), 12000u);
  auto s = map.global_lock().stats().Read();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_GT(s.fallback_acquisitions, 0u);
  EXPECT_DOUBLE_EQ(s.AbortRate(), 1.0);

  GlobalEmulatedRtmConfig() = saved;
  RtmForceUsable(-1);
}

TEST(AdversarialTest, ChurnAtCapacityEdge) {
  // The §6.3 "inserts and deletes to a table at high occupancy" use mode:
  // fill to the brim, then steady-state replace for many rounds.
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 9;  // 4096 slots
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::uint64_t next = 0;
  while (map.Insert(next, next) == InsertResult::kOk) {
    ++next;
  }
  const double full_load = map.LoadFactor();
  EXPECT_GT(full_load, 0.9);

  Xorshift128Plus rng(123);
  std::uint64_t oldest = 0;
  std::uint64_t churned = 0;
  for (int round = 0; round < 20000; ++round) {
    ASSERT_TRUE(map.Erase(oldest)) << oldest;
    ++oldest;
    // The just-freed slot must be enough for one new key (maybe via a path).
    ASSERT_EQ(map.Insert(next, next), InsertResult::kOk) << next;
    ++next;
    ++churned;
  }
  EXPECT_NEAR(map.LoadFactor(), full_load, 0.001);
  // Every live key is findable; every churned-out key is gone.
  std::uint64_t v;
  for (std::uint64_t k = oldest; k < next; k += 97) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
  for (std::uint64_t k = 0; k < oldest; k += 97) {
    ASSERT_FALSE(map.Find(k, &v)) << k;
  }
}

TEST(AdversarialTest, ZeroHashBitsInTagRegion) {
  // Hash whose top byte (the tag source) is always zero: the tag must still
  // be nonzero (reserved as "empty") and the table must work.
  struct LowBitsHash {
    std::uint64_t operator()(std::uint64_t key) const noexcept {
      return Mix64(key) & 0x00ffffffffffffffull;  // top byte zeroed
    }
  };
  CuckooMap<std::uint64_t, std::uint64_t, LowBitsHash>::Options o;
  o.initial_bucket_count_log2 = 10;
  CuckooMap<std::uint64_t, std::uint64_t, LowBitsHash> map(o);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
  }
}

}  // namespace
}  // namespace cuckoo
