#include "src/cuckoo/table_core.h"

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Core8 = TableCore<std::uint64_t, std::uint64_t, 8>;
using Core4 = TableCore<std::uint32_t, std::uint32_t, 4>;

TEST(TableCoreTest, ConstructedEmpty) {
  Core8 core(4);  // 16 buckets
  EXPECT_EQ(core.bucket_count(), 16u);
  EXPECT_EQ(core.slot_count(), 128u);
  for (std::size_t b = 0; b < core.bucket_count(); ++b) {
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ(core.Tag(b, s), 0);
      EXPECT_FALSE(core.SlotOccupied(b, s));
    }
    EXPECT_EQ(core.FindEmptySlot(b), 0);
  }
}

TEST(TableCoreTest, WriteAndReadSlot) {
  Core8 core(4);
  core.WriteSlot(3, 2, 0xab, 42, 99);
  EXPECT_EQ(core.Tag(3, 2), 0xab);
  EXPECT_TRUE(core.SlotOccupied(3, 2));
  EXPECT_EQ(core.KeyRef(3, 2), 42u);
  EXPECT_EQ(core.ValueRef(3, 2), 99u);
  EXPECT_EQ(core.LoadKey(3, 2), 42u);
  EXPECT_EQ(core.LoadValue(3, 2), 99u);
}

TEST(TableCoreTest, WriteValueOnly) {
  Core8 core(4);
  core.WriteSlot(0, 0, 1, 7, 10);
  core.WriteValue(0, 0, 20);
  EXPECT_EQ(core.KeyRef(0, 0), 7u);
  EXPECT_EQ(core.ValueRef(0, 0), 20u);
}

TEST(TableCoreTest, ClearSlotEmptiesIt) {
  Core8 core(4);
  core.WriteSlot(1, 1, 5, 1, 2);
  core.ClearSlot(1, 1);
  EXPECT_FALSE(core.SlotOccupied(1, 1));
  EXPECT_EQ(core.FindEmptySlot(1), 0);
}

TEST(TableCoreTest, FindEmptySlotScansInOrder) {
  Core8 core(4);
  for (int s = 0; s < 8; ++s) {
    core.WriteSlot(2, s, 1, s, s);
  }
  EXPECT_EQ(core.FindEmptySlot(2), -1);
  core.ClearSlot(2, 5);
  EXPECT_EQ(core.FindEmptySlot(2), 5);
  core.ClearSlot(2, 1);
  EXPECT_EQ(core.FindEmptySlot(2), 1);
}

TEST(TableCoreTest, MoveSlotTransfersEverything) {
  Core8 core(4);
  core.WriteSlot(0, 3, 0x7f, 1234, 5678);
  core.MoveSlot(0, 3, 9, 6);
  EXPECT_FALSE(core.SlotOccupied(0, 3));
  EXPECT_EQ(core.Tag(9, 6), 0x7f);
  EXPECT_EQ(core.KeyRef(9, 6), 1234u);
  EXPECT_EQ(core.ValueRef(9, 6), 5678u);
}

TEST(TableCoreTest, AltBucketInvolutive) {
  Core8 core(10);  // 1024 buckets
  for (unsigned tag = 1; tag < 256; ++tag) {
    for (std::size_t b : {std::size_t{0}, std::size_t{17}, std::size_t{1023}}) {
      std::size_t alt = core.AltBucket(b, static_cast<std::uint8_t>(tag));
      EXPECT_NE(alt, b);
      EXPECT_EQ(core.AltBucket(alt, static_cast<std::uint8_t>(tag)), b);
      EXPECT_LE(alt, core.mask);
    }
  }
}

TEST(TableCoreTest, AltBucketsVaryWithTag) {
  Core8 core(12);
  std::set<std::size_t> alts;
  for (unsigned tag = 1; tag < 256; ++tag) {
    alts.insert(core.AltBucket(100, static_cast<std::uint8_t>(tag)));
  }
  // 255 tags should spread across many distinct alternates.
  EXPECT_GT(alts.size(), 200u);
}

TEST(TableCoreTest, HeapBytesAccounting) {
  Core8 core(4);
  // 16 buckets * (8 keys + 8 values) * 8 bytes + 128 tag bytes.
  EXPECT_EQ(core.HeapBytes(), 16u * 128u + 128u);
}

TEST(TableCoreTest, SmallerAssociativityAndTypes) {
  Core4 core(3);
  EXPECT_EQ(core.slot_count(), 32u);
  core.WriteSlot(7, 3, 9, 11u, 22u);
  EXPECT_EQ(core.LoadKey(7, 3), 11u);
  EXPECT_EQ(core.kSlotsPerBucket, 4);
}

TEST(TableCoreTest, PrefetchHelpersAreSafe) {
  Core8 core(4);
  core.PrefetchTags(0);
  core.PrefetchBucket(15);
  SUCCEED();
}

}  // namespace
}  // namespace cuckoo
