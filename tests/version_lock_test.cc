#include "src/common/version_lock.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(VersionLockTest, StartsUnlockedAtVersionZero) {
  VersionLock lock;
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), 0u);
}

TEST(VersionLockTest, UnlockBumpsVersion) {
  VersionLock lock;
  std::uint64_t v0 = lock.AwaitVersion();
  lock.Lock();
  EXPECT_TRUE(lock.IsLocked());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), v0 + 1);
}

TEST(VersionLockTest, UnlockNoModifyPreservesVersion) {
  VersionLock lock;
  std::uint64_t v0 = lock.AwaitVersion();
  lock.Lock();
  lock.UnlockNoModify();
  EXPECT_EQ(lock.AwaitVersion(), v0);
  EXPECT_FALSE(lock.IsLocked());
}

TEST(VersionLockTest, TryLockFailsWhenHeld) {
  VersionLock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.UnlockNoModify();
}

TEST(VersionLockTest, LoadRawShowsLockBit) {
  VersionLock lock;
  lock.Lock();
  EXPECT_NE(lock.LoadRaw() & VersionLock::kLockBit, 0u);
  lock.Unlock();
  EXPECT_EQ(lock.LoadRaw() & VersionLock::kLockBit, 0u);
}

TEST(VersionLockTest, MutualExclusion) {
  VersionLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(lock.AwaitVersion(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(VersionLockTest, SeqlockReadersNeverSeeTornData) {
  // The exact protocol CuckooMap's optimistic reads use: writer bumps the
  // version around a two-word update; readers snapshot-validate.
  VersionLock lock;
  std::uint64_t slot_a = 0;
  std::uint64_t slot_b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 30000; ++i) {
      lock.Lock();
      slot_a = i;
      slot_b = ~i;
      lock.Unlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t v1 = lock.AwaitVersion();
        std::uint64_t a = slot_a;
        std::uint64_t b = slot_b;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (lock.LoadRaw() != v1) {
          continue;  // invalidated: discard
        }
        if (a != ~b && !(a == 0 && b == 0)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

TEST(VersionLockTest, PaddedVariantIsCacheLineSized) {
  EXPECT_EQ(sizeof(PaddedVersionLock), kCacheLineSize);
}

}  // namespace
}  // namespace cuckoo
