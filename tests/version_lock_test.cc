#include "src/common/version_lock.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/atomic_util.h"

namespace cuckoo {
namespace {

TEST(VersionLockTest, StartsUnlockedAtVersionZero) {
  VersionLock lock;
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), 0u);
}

TEST(VersionLockTest, UnlockBumpsVersion) {
  VersionLock lock;
  std::uint64_t v0 = lock.AwaitVersion();
  lock.Lock();
  EXPECT_TRUE(lock.IsLocked());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), v0 + 1);
}

TEST(VersionLockTest, UnlockNoModifyPreservesVersion) {
  VersionLock lock;
  std::uint64_t v0 = lock.AwaitVersion();
  lock.Lock();
  lock.UnlockNoModify();
  EXPECT_EQ(lock.AwaitVersion(), v0);
  EXPECT_FALSE(lock.IsLocked());
}

TEST(VersionLockTest, TryLockFailsWhenHeld) {
  VersionLock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.UnlockNoModify();
}

TEST(VersionLockTest, LoadRawShowsLockBit) {
  VersionLock lock;
  lock.Lock();
  EXPECT_NE(lock.LoadRaw() & VersionLock::kLockBit, 0u);
  lock.Unlock();
  EXPECT_EQ(lock.LoadRaw() & VersionLock::kLockBit, 0u);
}

TEST(VersionLockTest, MutualExclusion) {
  VersionLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(lock.AwaitVersion(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(VersionLockTest, SeqlockReadersNeverSeeTornData) {
  // The exact protocol CuckooMap's optimistic reads use: writer bumps the
  // version around a two-word update; readers snapshot-validate.
  VersionLock lock;
  std::uint64_t slot_a = 0;
  std::uint64_t slot_b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 30000; ++i) {
      lock.Lock();
      // Data racing with in-flight readers goes through the relaxed atomic
      // accessors on both sides (see docs/memory_model.md): the race is
      // intentional, and this keeps it defined — and TSan-clean.
      RelaxedStore(slot_a, i);
      RelaxedStore(slot_b, ~i);
      lock.Unlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t v1 = lock.AwaitVersion();
        std::uint64_t a = RelaxedLoad(slot_a);
        std::uint64_t b = RelaxedLoad(slot_b);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (lock.LoadRaw() != v1) {
          continue;  // invalidated: discard
        }
        if (a != ~b && !(a == 0 && b == 0)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

TEST(VersionLockTest, PaddedVariantIsCacheLineSized) {
  EXPECT_EQ(sizeof(PaddedVersionLock), kCacheLineSize);
}

TEST(VersionLockTest, TryLockFailsWhileAnotherThreadHolds) {
  VersionLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.Lock();
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.Unlock();
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Contended TryLock must fail every time and leave the word untouched.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(lock.TryLock());
  }
  EXPECT_TRUE(lock.IsLocked());
  release.store(true, std::memory_order_release);
  holder.join();
  EXPECT_EQ(lock.AwaitVersion(), 1u) << "failed TryLocks must not perturb the version";
  EXPECT_TRUE(lock.TryLock());
  lock.UnlockNoModify();
}

TEST(VersionLockTest, UnlockNoModifyKeepsConcurrentReadersValid) {
  // Deterministic core of the property: a reader whose snapshot straddles a
  // Lock/UnlockNoModify critical section validates successfully, because the
  // word returns to exactly its pre-lock value.
  VersionLock lock;
  const std::uint64_t v1 = lock.AwaitVersion();
  lock.Lock();
  lock.UnlockNoModify();
  EXPECT_EQ(lock.LoadRaw(), v1);

  // Threaded variant: a writer churns read-only critical sections while
  // readers run the full seqlock protocol over never-modified data. Readers
  // may transiently observe the lock bit (and retry), but any read that DOES
  // validate must be consistent, and the version must never advance.
  std::uint64_t datum = 42;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> validated{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      lock.Lock();
      lock.UnlockNoModify();
    }
    stop.store(true);
  });
  std::thread reader([&] {
    // do-while: on a single-core host the writer may finish before this
    // thread is first scheduled, and the protocol must be exercised at
    // least once either way.
    do {
      const std::uint64_t v = lock.AwaitVersion();
      EXPECT_EQ(v, 0u) << "UnlockNoModify must never advance the version";
      const std::uint64_t d = RelaxedLoad(datum);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (lock.LoadRaw() == v) {
        EXPECT_EQ(d, 42u);
        validated.fetch_add(1, std::memory_order_relaxed);
      }
    } while (!stop.load(std::memory_order_relaxed));
  });
  writer.join();
  reader.join();
  EXPECT_GT(validated.load(), 0);
  EXPECT_EQ(lock.AwaitVersion(), 0u);
}

TEST(VersionLockTest, VersionWrapsPastSixtyThreeBits) {
  // At the maximum 63-bit version, Unlock must wrap the version to zero and
  // still clear the lock bit: a carry into bit 63 would leave the lock
  // permanently "held" and spin every future reader and writer.
  VersionLock lock(VersionLock::kVersionMask);
  EXPECT_EQ(lock.AwaitVersion(), VersionLock::kVersionMask);
  lock.Lock();
  EXPECT_TRUE(lock.IsLocked());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), 0u);
  // A reader that snapshotted before the wrap still observes a change.
  EXPECT_TRUE(VersionLock::VersionChanged(VersionLock::kVersionMask, lock.AwaitVersion()));
  // And the lock keeps working on the far side of the wrap.
  lock.Lock();
  lock.Unlock();
  EXPECT_EQ(lock.AwaitVersion(), 1u);
}

TEST(VersionLockTest, UnlockNoModifyAtMaxVersionPreservesIt) {
  VersionLock lock(VersionLock::kVersionMask);
  ASSERT_TRUE(lock.TryLock());
  lock.UnlockNoModify();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_EQ(lock.AwaitVersion(), VersionLock::kVersionMask);
}

}  // namespace
}  // namespace cuckoo
