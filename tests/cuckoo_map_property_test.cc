// Property-based tests: CuckooMap checked against a reference model under
// randomized operation sequences, across the cross-product of
// set-associativity x search mode x read mode (TEST_P sweeps), plus
// occupancy and path-length invariants from the paper's analysis.
#include <cstdint>
#include <string>
#include <tuple>
#include <unordered_map>

#include "src/common/random.h"
#include "src/cuckoo/cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

struct Variant {
  SearchMode search;
  ReadMode read;
  std::size_t stripes;
};

class CuckooModelTest : public ::testing::TestWithParam<Variant> {};

TEST_P(CuckooModelTest, MatchesReferenceModelUnderRandomOps) {
  const Variant variant = GetParam();
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 6;
  o.search_mode = variant.search;
  o.read_mode = variant.read;
  o.stripe_count = variant.stripes;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::unordered_map<std::uint64_t, std::uint64_t> model;

  Xorshift128Plus rng(2024);
  for (int step = 0; step < 60000; ++step) {
    std::uint64_t key = rng.NextBelow(4000);  // dense key space: collisions matter
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(5)) {
      case 0: {  // Insert
        bool model_new = model.find(key) == model.end();
        InsertResult r = map.Insert(key, value);
        ASSERT_EQ(r == InsertResult::kOk, model_new) << "step " << step;
        if (model_new) {
          model[key] = value;
        }
        break;
      }
      case 1: {  // Upsert
        InsertResult r = map.Upsert(key, value);
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(r == InsertResult::kKeyExists, existed);
        model[key] = value;
        break;
      }
      case 2: {  // Update
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 3: {  // Erase
        bool existed = model.erase(key) > 0;
        ASSERT_EQ(map.Erase(key), existed);
        break;
      }
      case 4: {  // Find
        std::uint64_t v = 0;
        auto it = model.find(key);
        bool found = map.Find(key, &v);
        ASSERT_EQ(found, it != model.end()) << "step " << step;
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
    if (step % 10000 == 0) {
      ASSERT_EQ(map.Size(), model.size());
    }
  }
  // Full final audit.
  ASSERT_EQ(map.Size(), model.size());
  for (const auto& [key, value] : model) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.Find(key, &v)) << key;
    ASSERT_EQ(v, value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CuckooModelTest,
    ::testing::Values(Variant{SearchMode::kBfs, ReadMode::kOptimistic, 2048},
                      Variant{SearchMode::kBfs, ReadMode::kLocked, 2048},
                      Variant{SearchMode::kDfs, ReadMode::kOptimistic, 2048},
                      Variant{SearchMode::kDfs, ReadMode::kLocked, 64},
                      Variant{SearchMode::kBfs, ReadMode::kOptimistic, 16}),
    [](const ::testing::TestParamInfo<Variant>& param_info) {
      return std::string(ToString(param_info.param.search)) + "_" + ToString(param_info.param.read) + "_" +
             std::to_string(param_info.param.stripes);
    });

// ---- Occupancy properties across associativities ---------------------------

template <int B>
double FillToCapacity() {
  typename CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
                     std::equal_to<std::uint64_t>, B>::Options o;
  o.initial_bucket_count_log2 = 12;
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
            std::equal_to<std::uint64_t>, B>
      map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  return map.LoadFactor();
}

TEST(CuckooOccupancyTest, HigherAssociativityFillsFuller) {
  // Footnote 1: 2 hash functions alone reach ~50%; 4-way+ exceeds 90%.
  double lf4 = FillToCapacity<4>();
  double lf8 = FillToCapacity<8>();
  double lf16 = FillToCapacity<16>();
  EXPECT_GT(lf4, 0.90);
  EXPECT_GT(lf8, 0.93);
  EXPECT_GT(lf16, 0.95);
  EXPECT_LT(lf4, lf8);
  // Note: at a fixed search budget M, 16-way is not strictly fuller than
  // 8-way (its Eq. 2 depth bound is smaller), so only the 4-vs-8 ordering
  // and the absolute floors are asserted.
}

TEST(CuckooOccupancyTest, OneWayDegeneratesToLowOccupancy) {
  // B=1 is plain (non-set-associative) 2-choice cuckoo: far lower capacity.
  double lf1 = FillToCapacity<1>();
  EXPECT_LT(lf1, 0.60);
  EXPECT_GT(lf1, 0.20);
}

// ---- Path-length invariants -------------------------------------------------

class BfsBoundTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BfsBoundTest, ExecutedPathsRespectEq2) {
  const std::size_t max_slots = GetParam();
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 10;
  o.auto_expand = false;
  o.max_search_slots = max_slots;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  EXPECT_LE(map.Stats().MaxPathLength(),
            static_cast<std::int64_t>(MaxBfsPathLength(8, max_slots)));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BfsBoundTest, ::testing::Values(200, 500, 2000, 8000));

TEST(CuckooPropertyTest, SmallerSearchBudgetLowersAchievableLoad) {
  auto fill = [](std::size_t budget) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = 11;
    o.auto_expand = false;
    o.max_search_slots = budget;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    std::uint64_t i = 0;
    while (map.Insert(i, i) == InsertResult::kOk) {
      ++i;
    }
    return map.LoadFactor();
  };
  double tiny = fill(32);
  double large = fill(4000);
  EXPECT_LE(tiny, large);
  EXPECT_GT(large, 0.93);
}

TEST(CuckooPropertyTest, SizeNeverNegativeUnderChurn) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 6;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  Xorshift128Plus rng(99);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t k = rng.NextBelow(256);
    if (rng.NextBelow(2) == 0) {
      map.Insert(k, k);
    } else {
      map.Erase(k);
    }
    ASSERT_LE(map.Size(), 256u);
  }
}

TEST(CuckooPropertyTest, EraseEverythingReturnsToEmpty) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 8;
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::uint64_t count = 0;
  while (map.Insert(count, count) == InsertResult::kOk) {
    ++count;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_TRUE(map.Erase(i));
  }
  EXPECT_EQ(map.Size(), 0u);
  // The table is fully reusable after total erase.
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(map.Insert(i, i + 1), InsertResult::kOk);
  }
  EXPECT_EQ(map.Size(), count);
}

}  // namespace
}  // namespace cuckoo
