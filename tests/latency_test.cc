#include "src/benchkit/latency.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_EQ(hist.PercentileNanos(0.5), 0u);
  EXPECT_DOUBLE_EQ(hist.MeanNanos(), 0.0);
}

TEST(LatencyHistogramTest, BucketMappingRoundTrips) {
  // Every recorded value must land in a bucket whose upper bound is >= the
  // value and within 6.25% relative error.
  // The last probe (60 s) sits inside the histogram's ~68 s range.
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull, 4096ull,
                          123456ull, 10000000ull, 60000000000ull}) {
    std::size_t idx = LatencyHistogram::BucketFor(v);
    std::uint64_t upper = LatencyHistogram::BucketUpperBound(idx);
    EXPECT_GE(upper, v) << v;
    if (v >= 16) {
      EXPECT_LE(static_cast<double>(upper - v), static_cast<double>(v) * 0.0625 + 1.0) << v;
    } else {
      EXPECT_EQ(upper, v);
    }
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotonic) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v += 7) {
    std::size_t idx = LatencyHistogram::BucketFor(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

TEST(LatencyHistogramTest, PercentilesOfKnownDistribution) {
  LatencyHistogram hist;
  // 1000 samples at 100ns, 10 at 10000ns.
  for (int i = 0; i < 1000; ++i) {
    hist.Record(100);
  }
  for (int i = 0; i < 10; ++i) {
    hist.Record(10000);
  }
  EXPECT_EQ(hist.TotalCount(), 1010u);
  std::uint64_t p50 = hist.PercentileNanos(0.50);
  std::uint64_t p99 = hist.PercentileNanos(0.99);
  std::uint64_t p999 = hist.PercentileNanos(0.999);
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 107u);  // within bucket error
  EXPECT_LE(p99, 107u);  // 99th is still in the 100ns mass
  EXPECT_GE(p999, 10000u);
  EXPECT_LE(p999, 10700u);
}

TEST(LatencyHistogramTest, MeanApproximatesTrueMean) {
  LatencyHistogram hist;
  Xorshift128Plus rng(8);
  double true_sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    std::uint64_t v = 50 + rng.NextBelow(10000);
    hist.Record(v);
    true_sum += static_cast<double>(v);
  }
  double true_mean = true_sum / kN;
  EXPECT_NEAR(hist.MeanNanos(), true_mean, true_mean * 0.07);
}

TEST(LatencyHistogramTest, ConcurrentRecording) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      Xorshift128Plus rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(rng.NextBelow(1000000));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(hist.TotalCount(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram hist;
  hist.Record(500);
  hist.Reset();
  EXPECT_EQ(hist.TotalCount(), 0u);
}

TEST(LatencyHistogramTest, ExtremeValuesAreClamped) {
  LatencyHistogram hist;
  hist.Record(~0ull);  // clamps into the last bucket rather than overflowing
  EXPECT_EQ(hist.TotalCount(), 1u);
  EXPECT_GT(hist.PercentileNanos(1.0), 0u);
}

}  // namespace
}  // namespace cuckoo
