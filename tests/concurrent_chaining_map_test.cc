#include "src/baselines/concurrent_chaining_map.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = ConcurrentChainingMap<std::uint64_t, std::uint64_t>;

TEST(ConcurrentChainingMapTest, SingleThreadRoundTrip) {
  Map map(1 << 10);
  EXPECT_EQ(map.Insert(1, 10), InsertResult::kOk);
  EXPECT_EQ(map.Insert(1, 20), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(map.Update(1, 30));
  EXPECT_EQ(map.Upsert(2, 5), InsertResult::kOk);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_EQ(map.Size(), 1u);
}

TEST(ConcurrentChainingMapTest, ChainsAbsorbOverflow) {
  // Fixed bucket count: inserts never fail, chains grow.
  Map map(16);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  EXPECT_EQ(map.Size(), 10000u);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
  }
}

TEST(ConcurrentChainingMapTest, DisjointWritersAllLand) {
  Map map(1 << 12);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 15000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

TEST(ConcurrentChainingMapTest, RacingInsertersExactlyOneWins) {
  Map map(1 << 10);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 8000;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &wins] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (map.Insert(k, k) == InsertResult::kOk) {
          wins.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(map.Size(), kKeys);
}

TEST(ConcurrentChainingMapTest, ReadersDuringWrites) {
  Map map(1 << 12);
  constexpr std::uint64_t kResident = 10000;
  for (std::uint64_t i = 0; i < kResident; ++i) {
    map.Insert(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread reader([&] {
    std::uint64_t key = 0;
    std::uint64_t v;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!map.Find(key % kResident, &v)) {
        misses.fetch_add(1);
      }
      ++key;
    }
  });
  std::thread writer([&map] {
    for (std::uint64_t i = kResident; i < kResident + 20000; ++i) {
      map.Insert(i, i);
    }
  });
  writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(misses.load(), 0u);
}

TEST(ConcurrentChainingMapTest, ChurnReturnsToEmpty) {
  Map map(1 << 10);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 3000;
      for (int round = 0; round < 10; ++round) {
        for (std::uint64_t i = 0; i < 3000; ++i) {
          EXPECT_EQ(map.Insert(base + i, i), InsertResult::kOk);
        }
        for (std::uint64_t i = 0; i < 3000; ++i) {
          EXPECT_TRUE(map.Erase(base + i));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), 0u);
}

TEST(ConcurrentChainingMapTest, MemoryHeavierThanCuckooPerEntry) {
  Map map(1 << 10);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    map.Insert(i, i);
  }
  // Node = next ptr + hash + 16-byte pair = 32 bytes, vs cuckoo's ~17.
  EXPECT_GE(map.HeapBytes(), 10000u * 32u);
}

TEST(ConcurrentChainingMapTest, ModelEquivalenceSingleThread) {
  Map map(1 << 8);
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  Xorshift128Plus rng(21);
  for (int i = 0; i < 40000; ++i) {
    std::uint64_t key = rng.NextBelow(1000);
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(4)) {
      case 0: {
        bool fresh = model.emplace(key, value).second;
        ASSERT_EQ(map.Insert(key, value) == InsertResult::kOk, fresh);
        break;
      }
      case 1: {
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 2:
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      case 3: {
        std::uint64_t v;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
}

}  // namespace
}  // namespace cuckoo
