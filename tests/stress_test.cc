// Long-running randomized stress harness. Default duration is ~2 seconds so
// CI stays fast; set CUCKOO_STRESS_SECONDS=60 (or more) for soak testing.
//
// Scenario: one CuckooMap under simultaneous inserters, erasers, updaters,
// optimistic readers, batch readers, and a stats poller, while expansions
// fire. Invariants checked throughout and at the end:
//   * a reader never sees a value that was never written for that key,
//   * per-thread ownership regions never lose confirmed inserts,
//   * final size equals confirmed inserts minus confirmed erases.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/cuckoo/cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

int StressSeconds() {
  const char* env = std::getenv("CUCKOO_STRESS_SECONDS");
  if (env == nullptr) {
    return 2;
  }
  int seconds = std::atoi(env);
  return seconds > 0 ? seconds : 2;
}

// Values encode (key, generation) so readers can validate what they see.
std::uint64_t Encode(std::uint64_t key, std::uint32_t generation) {
  return (key << 20) | generation;
}

TEST(StressTest, MixedWorkloadSoak) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 8;  // small start: expansions fire early
  CuckooMap<std::uint64_t, std::uint64_t> map(o);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(StressSeconds());
  std::atomic<bool> stop{false};
  constexpr int kWriterThreads = 3;
  constexpr int kReaderThreads = 2;
  constexpr std::uint64_t kKeysPerWriter = 1 << 16;

  std::atomic<std::uint64_t> bad_values{0};
  std::vector<std::int64_t> net_inserted(kWriterThreads, 0);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriterThreads; ++w) {
    threads.emplace_back([&, w] {
      // Each writer owns keys [w * kKeysPerWriter, (w+1) * kKeysPerWriter).
      const std::uint64_t base = static_cast<std::uint64_t>(w) * kKeysPerWriter;
      Xorshift128Plus rng(9000 + w);
      std::vector<std::uint8_t> present(kKeysPerWriter, 0);
      std::vector<std::uint32_t> generation(kKeysPerWriter, 0);
      std::int64_t net = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t local = rng.NextBelow(kKeysPerWriter);
        std::uint64_t key = base + local;
        switch (rng.NextBelow(4)) {
          case 0:  // insert
            if (map.Insert(key, Encode(key, generation[local])) == InsertResult::kOk) {
              EXPECT_EQ(present[local], 0) << "insert succeeded on a present key";
              present[local] = 1;
              ++net;
            } else {
              EXPECT_EQ(present[local], 1) << "insert rejected on an absent key";
            }
            break;
          case 1:  // erase
            if (map.Erase(key)) {
              EXPECT_EQ(present[local], 1);
              present[local] = 0;
              ++generation[local];
              --net;
            } else {
              EXPECT_EQ(present[local], 0);
            }
            break;
          case 2:  // update
            EXPECT_EQ(map.Update(key, Encode(key, generation[local])), present[local] == 1);
            break;
          case 3: {  // self-read: owner must observe its own state exactly
            std::uint64_t v;
            bool hit = map.Find(key, &v);
            EXPECT_EQ(hit, present[local] == 1);
            if (hit && (v >> 20) != key) {
              bad_values.fetch_add(1);
            }
            break;
          }
        }
      }
      net_inserted[w] = net;
    });
  }
  for (int r = 0; r < kReaderThreads; ++r) {
    threads.emplace_back([&, r] {
      Xorshift128Plus rng(77 + r);
      std::uint64_t v;
      std::vector<std::uint64_t> keys(64);
      std::vector<std::uint64_t> values(64);
      std::unique_ptr<bool[]> found(new bool[64]);
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.NextBelow(8) == 0) {
          for (std::size_t i = 0; i < keys.size(); ++i) {
            keys[i] = rng.NextBelow(kWriterThreads * kKeysPerWriter);
          }
          map.FindBatch(keys.data(), keys.size(), values.data(), found.get());
          for (std::size_t i = 0; i < keys.size(); ++i) {
            if (found[i] && (values[i] >> 20) != keys[i]) {
              bad_values.fetch_add(1);
            }
          }
        } else {
          std::uint64_t key = rng.NextBelow(kWriterThreads * kKeysPerWriter);
          if (map.Find(key, &v) && (v >> 20) != key) {
            bad_values.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {  // stats poller: exercises aggregation under load
    while (!stop.load(std::memory_order_relaxed)) {
      MapStatsSnapshot s = map.Stats();
      EXPECT_GE(s.inserts, 0);
      (void)map.LoadFactor();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(bad_values.load(), 0u) << "a reader observed a value never written for its key";
  std::int64_t expected_size = 0;
  for (std::int64_t net : net_inserted) {
    expected_size += net;
  }
  ASSERT_GE(expected_size, 0);
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(expected_size));
  EXPECT_GT(map.Stats().expansions, 0);
}

}  // namespace
}  // namespace cuckoo
