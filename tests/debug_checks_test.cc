// Tests for the debug concurrency assertions (src/common/debug_checks.h):
// VersionLock owner tracking, the stripe-ordering discipline, and the
// always-on structural invariant walkers.
//
// The misuse tests are death tests: every violation must abort with a
// diagnostic rather than corrupt state or deadlock. The owner/ordering
// assertions exist only under CUCKOO_DEBUG_CHECKS (tsan/asan/ubsan/debug
// presets); the invariant walkers are active in every build type.
#include "src/common/debug_checks.h"

#include <cstdint>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/striped_locks.h"
#include "src/common/version_lock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/table_core.h"
#include "src/cuckoo/types.h"

namespace cuckoo {
namespace {

// Death tests fork; "threadsafe" re-executes the binary so forking from a
// process that has spawned threads (or runs under a sanitizer) stays sound.
class DebugChecksDeathTest : public ::testing::Test {
 protected:
  // (Direct flag assignment rather than GTEST_FLAG_SET for compatibility
  // with pre-1.11 googletest.)
  void SetUp() override { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};

// ----- Always-on invariant walkers -----------------------------------------

using SmallCore = TableCore<std::uint64_t, std::uint64_t, 4>;

TEST(InvariantWalkerTest, TableCorePassesOnConsistentTable) {
  SmallCore core(4);
  const HashedKey h = HashedKey::From(0x123456789abcdef0ull);
  const std::size_t b1 = h.Bucket1(core.mask);
  core.WriteSlot(b1, 0, h.tag, 1, 100);
  core.AssertInvariants();   // structural only
  core.AssertInvariants(1);  // with occupancy
}

TEST(InvariantWalkerTest, CuckooMapPassesAfterChurn) {
  CuckooMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(map.Insert(k, k * 3), InsertResult::kOk);
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(map.Erase(k));
  }
  map.AssertInvariants();
}

TEST_F(DebugChecksDeathTest, TableCoreSizeMismatchAborts) {
  EXPECT_DEATH(
      {
        SmallCore core(4);
        const HashedKey h = HashedKey::From(0x123456789abcdef0ull);
        core.WriteSlot(h.Bucket1(core.mask), 0, h.tag, 1, 100);
        core.AssertInvariants(5);  // actually holds 1 item
      },
      "disagrees with the size counter");
}

#if !CUCKOO_DEBUG_CHECKS

TEST(DebugChecksTest, RequiresDebugChecks) {
  GTEST_SKIP() << "built without CUCKOO_DEBUG_CHECKS; use the tsan/asan/ubsan/"
                  "debug presets to run the owner and ordering assertion tests";
}

#else

// ----- VersionLock owner tracking ------------------------------------------

TEST_F(DebugChecksDeathTest, RecursiveLockAborts) {
  EXPECT_DEATH(
      {
        VersionLock lock;
        lock.Lock();
        lock.Lock();  // would self-deadlock without the owner check
      },
      "recursive VersionLock acquisition");
}

TEST_F(DebugChecksDeathTest, UnlockByNonOwnerAborts) {
  EXPECT_DEATH(
      {
        VersionLock lock;
        std::thread t([&] { lock.Lock(); });
        t.join();
        lock.Unlock();  // this thread never acquired it
      },
      "does not hold");
}

TEST_F(DebugChecksDeathTest, UnlockWhenNeverLockedAborts) {
  EXPECT_DEATH(
      {
        VersionLock lock;
        lock.Unlock();
      },
      "does not hold");
}

TEST(DebugChecksTest, TryLockThenUnlockTracksOwner) {
  VersionLock lock;
  ASSERT_TRUE(lock.TryLock());
  lock.Unlock();  // same thread: legal
  ASSERT_TRUE(lock.TryLock());
  lock.UnlockNoModify();
}

// ----- Stripe-ordering discipline ------------------------------------------

TEST_F(DebugChecksDeathTest, DescendingPairAcquisitionAborts) {
  EXPECT_DEATH(
      {
        LockStripes stripes(8);
        stripes.LockPair(5, 6);
        // Acquiring stripe 0 while holding 5 and 6 inverts the order a peer
        // doing LockPair(0, 5) uses — a real deadlock, caught deterministically.
        stripes.LockPair(0, 3);
      },
      "stripe-order violation");
}

TEST_F(DebugChecksDeathTest, DoubleAcquireOfOneStripeAborts) {
  EXPECT_DEATH(
      {
        LockStripes stripes(8);
        stripes.LockPair(1, 2);
        stripes.LockPair(9, 11);  // stripe 9 & 7 == 1: already held
      },
      "stripe");
}

TEST(DebugChecksTest, AscendingNestedPairsAllowed) {
  LockStripes stripes(16);
  stripes.LockPair(1, 2);
  stripes.LockPair(5, 6);  // strictly above every held stripe: legal
  EXPECT_EQ(debug::HeldStripeCount(&stripes), 4u);
  stripes.UnlockPair(5, 6);
  stripes.UnlockPair(1, 2);
  EXPECT_EQ(debug::HeldStripeCount(&stripes), 0u);
}

TEST(DebugChecksTest, GuardsMaintainHeldStripeSet) {
  LockStripes stripes(16);
  EXPECT_EQ(debug::HeldStripeCount(&stripes), 0u);
  {
    PairGuard guard(stripes, 3, 7);
    EXPECT_EQ(debug::HeldStripeCount(&stripes), 2u);
  }
  EXPECT_EQ(debug::HeldStripeCount(&stripes), 0u);
  {
    // Buckets 4 and 20 share stripe 4 (mod 16): only one acquisition.
    PairGuard guard(stripes, 4, 20);
    EXPECT_EQ(debug::HeldStripeCount(&stripes), 1u);
  }
  {
    AllGuard all(stripes);
    EXPECT_EQ(debug::HeldStripeCount(&stripes), 16u);
  }
  EXPECT_EQ(debug::HeldStripeCount(&stripes), 0u);
}

TEST(DebugChecksTest, IndependentTablesDoNotInterfere) {
  // The held-stripe set is keyed by table: holding a high stripe of one map
  // must not forbid locking a low stripe of another.
  LockStripes first(8);
  LockStripes second(8);
  first.LockPair(6, 7);
  second.LockPair(0, 1);  // lower indices, different table: legal
  second.UnlockPair(0, 1);
  first.UnlockPair(6, 7);
}

#endif  // CUCKOO_DEBUG_CHECKS

}  // namespace
}  // namespace cuckoo
