// Tests for the Prometheus text renderer, the metrics registry, the slowlog
// ring, and the /metrics HTTP endpoint (fetched over a real TCP socket).
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/kvserver/socket_server.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/obs/slowlog.h"

namespace cuckoo {
namespace obs {
namespace {

TEST(MetricsTextTest, CounterAndGaugeFormat) {
  std::string out;
  AppendCounter("app_ops_total", "Operations.", 42, &out);
  EXPECT_NE(out.find("# HELP app_ops_total Operations.\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE app_ops_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("app_ops_total 42\n"), std::string::npos);

  out.clear();
  AppendGauge("app_items", "Items.", 7.5, &out);
  EXPECT_NE(out.find("# TYPE app_items gauge\n"), std::string::npos);
  EXPECT_NE(out.find("app_items 7.5\n"), std::string::npos);
}

TEST(MetricsTextTest, LatencySummaryQuantilesAndScale) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<std::uint64_t>(i) * 1000);  // 1us .. 1ms in ns
  }
  std::string out;
  AppendLatencySummary("op_seconds", "Op latency.", h.Snapshot(), 1e-9, &out);
  EXPECT_NE(out.find("# TYPE op_seconds summary\n"), std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    EXPECT_NE(out.find(std::string("op_seconds{quantile=\"") + q + "\"} "),
              std::string::npos)
        << out;
  }
  EXPECT_NE(out.find("op_seconds_count 1000\n"), std::string::npos);
  EXPECT_NE(out.find("op_seconds_sum "), std::string::npos);
  EXPECT_NE(out.find("op_seconds_max "), std::string::npos);
}

TEST(MetricsRegistryTest, RendersSourcesInOrder) {
  MetricsRegistry registry;
  registry.AddSource([](std::string* out) { out->append("first 1\n"); });
  registry.AddSource([](std::string* out) { out->append("second 2\n"); });
  const std::string page = registry.Render();
  EXPECT_LT(page.find("first 1"), page.find("second 2"));
}

TEST(SlowlogTest, ThresholdZeroDisables) {
  Slowlog log(0, 8);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.MaybeRecord(1000000, "set", "k"));
  EXPECT_EQ(log.TotalLogged(), 0u);
}

TEST(SlowlogTest, RecordsOnlyAboveThresholdAndCapsRing) {
  Slowlog log(100, 4);
  EXPECT_FALSE(log.MaybeRecord(99, "get", "fast"));
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(log.MaybeRecord(100 + i, "set", "key" + std::to_string(i)));
  }
  EXPECT_EQ(log.TotalLogged(), 10u);
  const std::vector<Slowlog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);  // ring capped; oldest evicted
  EXPECT_EQ(entries.front().detail, "key6");
  EXPECT_EQ(entries.back().detail, "key9");
  EXPECT_EQ(entries.back().latency_ns, 109u);
  EXPECT_EQ(entries.back().op, "set");
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.TotalLogged(), 10u);  // total survives Clear
}

// Fetch a path from the local metrics server; returns the raw HTTP response.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  SocketClient client("127.0.0.1", port);
  if (!client.connected()) {
    return "";
  }
  if (!client.Send("GET " + path + " HTTP/1.0\r\n\r\n")) {
    return "";
  }
  std::string response;
  while (client.Receive(&response) > 0) {
  }
  return response;
}

TEST(MetricsHttpTest, ServesRegistryOnEphemeralPort) {
  MetricsRegistry registry;
  registry.AddSource([](std::string* out) {
    AppendCounter("demo_total", "Demo.", 5, out);
  });
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0));
  ASSERT_NE(server.port(), 0);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("demo_total 5\n"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/health").find("ok"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  server.Stop();
}

TEST(MetricsHttpTest, ConcurrentScrapesAllSucceed) {
  MetricsRegistry registry;
  registry.AddSource([](std::string* out) {
    AppendCounter("scrape_total", "Scrapes.", 1, out);
  });
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0));
  constexpr int kThreads = 4;
  std::vector<std::thread> team;
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        if (HttpGet(server.port(), "/metrics").find("scrape_total 1") !=
            std::string::npos) {
          ++ok[t];
        }
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok[t], 8);
  }
  EXPECT_GE(server.RequestsServed(), static_cast<std::uint64_t>(kThreads) * 8);
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace cuckoo
