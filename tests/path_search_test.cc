#include "src/cuckoo/path_search.h"

#include <cstdint>

#include "src/common/random.h"
#include "src/cuckoo/table_core.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Core = TableCore<std::uint64_t, std::uint64_t, 4>;

// Fill every slot of every bucket with tag `tag`.
void FillAll(Core& core, std::uint8_t tag) {
  for (std::size_t b = 0; b < core.bucket_count(); ++b) {
    for (int s = 0; s < 4; ++s) {
      core.WriteSlot(b, s, tag, b * 4 + s, 0);
    }
  }
}

TEST(MaxBfsPathLengthTest, MatchesPaperExamples) {
  // §4.3.2: "As used in MemC3, B = 4, M = 2000 ... LBFS = 5."
  EXPECT_EQ(MaxBfsPathLength(4, 2000), 5u);
  // Eq. 2 for the repo's default 8-way table.
  EXPECT_EQ(MaxBfsPathLength(8, 2000), 4u);
  EXPECT_EQ(MaxBfsPathLength(16, 2000), 3u);
  EXPECT_EQ(MaxBfsPathLength(2, 2000), 9u);
}

TEST(MaxBfsPathLengthTest, MonotonicInBudget) {
  for (int b : {2, 4, 8, 16}) {
    std::size_t prev = 0;
    for (std::size_t m : {100u, 1000u, 10000u, 100000u}) {
      std::size_t len = MaxBfsPathLength(b, m);
      EXPECT_GE(len, prev);
      prev = len;
    }
  }
}

TEST(BfsSearchTest, FindsHoleInRootBucket) {
  Core core(6);
  CuckooPath path;
  ASSERT_TRUE(BfsSearch(core, 3, 9, 2000, false, &path));
  EXPECT_EQ(path.hops.size(), 1u);
  EXPECT_EQ(path.Displacements(), 0u);
  EXPECT_TRUE(path.hops[0].bucket == 3 || path.hops[0].bucket == 9);
  EXPECT_EQ(core.Tag(path.hops[0].bucket, path.hops[0].slot), 0);
}

TEST(BfsSearchTest, PathHopsAreChainedThroughAltBuckets) {
  Core core(6);
  FillAll(core, 1);
  // Punch one hole a couple of displacements away from bucket 5.
  std::size_t b = 5;
  std::size_t next = core.AltBucket(b, core.Tag(b, 0));
  std::size_t nextnext = core.AltBucket(next, core.Tag(next, 0));
  core.ClearSlot(nextnext, 2);

  CuckooPath path;
  std::size_t other = core.AltBucket(5, 0x55) == nextnext ? 1 : core.AltBucket(5, 0x55);
  ASSERT_TRUE(BfsSearch(core, 5, other, 100000, false, &path));
  ASSERT_GE(path.hops.size(), 1u);
  // Validate the chain invariant: each hop's item moves to the next hop's
  // bucket, which must be its tag-derived alternate.
  for (std::size_t i = 0; i + 1 < path.hops.size(); ++i) {
    const PathHop& from = path.hops[i];
    const PathHop& to = path.hops[i + 1];
    EXPECT_EQ(core.AltBucket(from.bucket, from.tag), to.bucket) << "hop " << i;
    EXPECT_NE(from.tag, 0) << "interior hops reference occupied slots";
  }
  // Final hop is the hole.
  const PathHop& hole = path.hops.back();
  EXPECT_EQ(core.Tag(hole.bucket, hole.slot), 0);
}

TEST(BfsSearchTest, FailsWhenBudgetExhausted) {
  Core core(6);
  FillAll(core, 1);
  // Single hole, tiny budget that cannot reach it.
  core.ClearSlot(0, 0);
  CuckooPath path;
  // Roots chosen far from bucket 0 in the tag-1 displacement graph.
  EXPECT_FALSE(BfsSearch(core, 33, 47, 8, false, &path));
}

TEST(BfsSearchTest, RespectsEq2Bound) {
  // Fill tables of each associativity to capacity and check every discovered
  // path obeys the analytic bound.
  Core core(8);
  Xorshift128Plus rng(1);
  std::uint64_t key = 0;
  const std::size_t kBudget = 2000;
  const std::size_t bound = MaxBfsPathLength(4, kBudget);
  for (;;) {
    HashedKey h = HashedKey::From(Mix64(key));
    std::size_t b1 = h.Bucket1(core.mask);
    std::size_t b2 = core.AltBucket(b1, h.tag);
    int s1 = core.FindEmptySlot(b1);
    int s2 = core.FindEmptySlot(b2);
    if (s1 >= 0) {
      core.WriteSlot(b1, s1, h.tag, key, 0);
    } else if (s2 >= 0) {
      core.WriteSlot(b2, s2, h.tag, key, 0);
    } else {
      CuckooPath path;
      if (!BfsSearch(core, b1, b2, kBudget, true, &path)) {
        break;  // table full
      }
      ASSERT_LE(path.Displacements(), bound);
      for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
        core.MoveSlot(path.hops[i].bucket, path.hops[i].slot, path.hops[i + 1].bucket,
                      path.hops[i + 1].slot);
      }
      core.WriteSlot(path.hops[0].bucket, path.hops[0].slot, h.tag, key, 0);
    }
    ++key;
  }
  // 4-way cuckoo should exceed 90% occupancy (footnote 1 of the paper).
  EXPECT_GT(static_cast<double>(key) / static_cast<double>(core.slot_count()), 0.9);
}

TEST(ExecutePathExclusiveTest, EmptyPathFailsWithoutTouchingTable) {
  // Regression: the hop loop counts down from hops.size() - 1; an empty path
  // used to underflow to SIZE_MAX and walk out of bounds.
  Core core(4);
  CuckooPath empty;
  EXPECT_FALSE(ExecutePathExclusive(core, empty));
  for (std::size_t b = 0; b < core.bucket_count(); ++b) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(core.Tag(b, s), 0);
    }
  }
}

TEST(ExecutePathExclusiveTest, SingleHopPathIsANoOpSuccess) {
  // A one-hop path is just the hole itself: nothing to displace.
  Core core(4);
  CuckooPath path;
  path.hops.push_back(PathHop{2, 1, 0});
  EXPECT_TRUE(ExecutePathExclusive(core, path));
  EXPECT_EQ(core.Tag(2, 1), 0);
}

TEST(ExecutePathExclusiveTest, ExecutesValidatedDisplacements) {
  Core core(4);
  // Place one item in bucket 3 slot 0 and describe the path moving it into
  // the (empty) slot 1 of its alternate bucket.
  const std::uint8_t tag = 7;
  core.WriteSlot(3, 0, tag, 42, 99);
  const std::size_t alt = core.AltBucket(3, tag);
  CuckooPath path;
  path.hops.push_back(PathHop{3, 0, tag});
  path.hops.push_back(PathHop{alt, 1, 0});
  ASSERT_TRUE(ExecutePathExclusive(core, path));
  EXPECT_EQ(core.Tag(3, 0), 0);
  EXPECT_EQ(core.Tag(alt, 1), tag);
  EXPECT_EQ(core.KeyRef(alt, 1), 42u);
}

TEST(ExecutePathExclusiveTest, FailsWhenHopValidationFails) {
  Core core(4);
  CuckooPath path;
  // Source slot is empty (tag mismatch): validation must fail, not move.
  path.hops.push_back(PathHop{3, 0, 7});
  path.hops.push_back(PathHop{5, 1, 0});
  EXPECT_FALSE(ExecutePathExclusive(core, path));
  EXPECT_EQ(core.Tag(5, 1), 0);
}

TEST(DfsSearchTest, FindsHoleInRootBucket) {
  Core core(6);
  Xorshift128Plus rng(2);
  CuckooPath path;
  ASSERT_TRUE(DfsSearch(core, 7, 11, 250, rng, &path));
  EXPECT_EQ(path.Displacements(), 0u);
}

TEST(DfsSearchTest, PathChainsThroughAltBuckets) {
  Core core(6);
  FillAll(core, 3);
  std::size_t b = 2;
  std::size_t hole_bucket = core.AltBucket(b, 3);
  core.ClearSlot(hole_bucket, 1);
  Xorshift128Plus rng(3);
  CuckooPath path;
  ASSERT_TRUE(DfsSearch(core, 2, 2 ^ 1, 250, rng, &path));
  for (std::size_t i = 0; i + 1 < path.hops.size(); ++i) {
    EXPECT_EQ(core.AltBucket(path.hops[i].bucket, path.hops[i].tag), path.hops[i + 1].bucket);
  }
}

TEST(DfsSearchTest, GivesUpAtMaxPathLength) {
  Core core(4);
  FillAll(core, 1);  // no hole anywhere
  Xorshift128Plus rng(4);
  CuckooPath path;
  EXPECT_FALSE(DfsSearch(core, 0, 1, 50, rng, &path));
}

TEST(DfsSearchTest, TreatsConcurrentlyEmptiedSlotAsHole) {
  Core core(4);
  FillAll(core, 1);
  // A slot whose tag reads 0 mid-walk is taken as the hole (models racing
  // with an erase). Clear a slot in the root's alternate.
  std::size_t alt = core.AltBucket(6, 1);
  core.ClearSlot(alt, 3);
  Xorshift128Plus rng(5);
  CuckooPath path;
  ASSERT_TRUE(DfsSearch(core, 6, alt, 250, rng, &path));
  EXPECT_EQ(core.Tag(path.hops.back().bucket, path.hops.back().slot), 0);
}

TEST(SearchComparisonTest, BfsPathsAreShorterThanDfsAtHighLoad) {
  // The quantitative heart of §4.3.2: at high occupancy DFS random walks are
  // orders of magnitude longer than BFS paths over the same table.
  Core core(10);
  // Fill to ~94% using direct placement.
  Xorshift128Plus rng(7);
  std::uint64_t key = 0;
  std::size_t target = core.slot_count() * 94 / 100;
  std::size_t placed = 0;
  while (placed < target) {
    HashedKey h = HashedKey::From(Mix64(key++));
    std::size_t b1 = h.Bucket1(core.mask);
    std::size_t b2 = core.AltBucket(b1, h.tag);
    int s = core.FindEmptySlot(b1);
    std::size_t b = b1;
    if (s < 0) {
      s = core.FindEmptySlot(b2);
      b = b2;
    }
    if (s >= 0) {
      core.WriteSlot(b, s, h.tag, key, 0);
      ++placed;
      continue;
    }
    CuckooPath path;
    if (!BfsSearch(core, b1, b2, 2000, false, &path)) {
      break;
    }
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      core.MoveSlot(path.hops[i].bucket, path.hops[i].slot, path.hops[i + 1].bucket,
                    path.hops[i + 1].slot);
    }
    core.WriteSlot(path.hops[0].bucket, path.hops[0].slot, h.tag, key, 0);
    ++placed;
  }

  // Compare discovered path lengths (without executing them).
  std::uint64_t bfs_total = 0;
  std::uint64_t dfs_total = 0;
  int samples = 0;
  for (int i = 0; i < 200; ++i) {
    HashedKey h = HashedKey::From(Mix64(key + i));
    std::size_t b1 = h.Bucket1(core.mask);
    std::size_t b2 = core.AltBucket(b1, h.tag);
    if (core.FindEmptySlot(b1) >= 0 || core.FindEmptySlot(b2) >= 0) {
      continue;
    }
    CuckooPath bfs_path;
    CuckooPath dfs_path;
    if (BfsSearch(core, b1, b2, 2000, false, &bfs_path) &&
        DfsSearch(core, b1, b2, 250, rng, &dfs_path)) {
      bfs_total += bfs_path.Displacements();
      dfs_total += dfs_path.Displacements();
      ++samples;
    }
  }
  ASSERT_GT(samples, 10);
  EXPECT_LT(bfs_total, dfs_total) << "BFS must find shorter paths in aggregate";
}

}  // namespace
}  // namespace cuckoo
