#include "src/benchkit/runner.h"

#include <cstdint>

#include "src/baselines/concurrent_chaining_map.h"
#include "src/cuckoo/cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

Map::Options Opts(std::size_t log2, bool expand = false) {
  Map::Options o;
  o.initial_bucket_count_log2 = log2;
  o.auto_expand = expand;
  return o;
}

TEST(RunnerTest, InsertOnlyFillReachesTarget) {
  Map map(Opts(12));
  RunOptions ro;
  ro.threads = 2;
  ro.insert_fraction = 1.0;
  ro.total_inserts = static_cast<std::uint64_t>(map.SlotCount() * 0.9);
  RunResult result = RunMixedFill(map, ro);
  EXPECT_EQ(map.Size(), ro.total_inserts);
  EXPECT_EQ(result.FailedInserts(), 0u);
  std::uint64_t inserts = 0;
  std::uint64_t lookups = 0;
  for (const SegmentResult& s : result.segments) {
    inserts += s.inserts;
    lookups += s.lookups;
    EXPECT_GT(s.nanos, 0u);
  }
  EXPECT_EQ(inserts, ro.total_inserts);
  EXPECT_EQ(lookups, 0u);
}

TEST(RunnerTest, MixedWorkloadHitsConfiguredRatio) {
  Map map(Opts(12));
  RunOptions ro;
  ro.threads = 4;
  ro.insert_fraction = 0.5;
  ro.total_inserts = 50000;
  RunResult result = RunMixedFill(map, ro);
  std::uint64_t inserts = 0;
  std::uint64_t lookups = 0;
  for (const SegmentResult& s : result.segments) {
    inserts += s.inserts;
    lookups += s.lookups;
  }
  EXPECT_EQ(inserts, 50000u);
  EXPECT_NEAR(static_cast<double>(lookups), 50000.0, 50.0);
}

TEST(RunnerTest, SegmentsPartitionTheFill) {
  Map map(Opts(12));
  RunOptions ro;
  ro.threads = 2;
  ro.total_inserts = 40000;
  ro.segment_boundaries = {0.25, 0.5, 1.0};
  RunResult result = RunMixedFill(map, ro);
  ASSERT_EQ(result.segments.size(), 3u);
  EXPECT_EQ(result.segments[0].inserts, 10000u);
  EXPECT_EQ(result.segments[1].inserts, 10000u);
  EXPECT_EQ(result.segments[2].inserts, 20000u);
  EXPECT_DOUBLE_EQ(result.segments[0].fill_fraction_lo, 0.0);
  EXPECT_DOUBLE_EQ(result.segments[2].fill_fraction_hi, 1.0);
  EXPECT_GT(result.OverallMops(), 0.0);
}

TEST(RunnerTest, MopsBetweenSelectsSegments) {
  Map map(Opts(12));
  RunOptions ro;
  ro.threads = 1;
  ro.total_inserts = 20000;
  ro.segment_boundaries = {0.5, 1.0};
  RunResult result = RunMixedFill(map, ro);
  double first = result.MopsBetween(0.0, 0.5);
  double second = result.MopsBetween(0.5, 1.0);
  double overall = result.OverallMops();
  EXPECT_GT(first, 0.0);
  EXPECT_GT(second, 0.0);
  EXPECT_LE(std::min(first, second), overall + 1e9);
}

TEST(RunnerTest, FailedInsertsReportedOnFullTable) {
  Map map(Opts(6));  // 512 slots, fixed
  RunOptions ro;
  ro.threads = 2;
  ro.total_inserts = 1000;  // ~195% of capacity
  RunResult result = RunMixedFill(map, ro);
  EXPECT_GT(result.FailedInserts(), 0u);
  EXPECT_LT(map.Size(), 1000u);
}

TEST(RunnerTest, PrefillInsertsScrambledIds) {
  Map map(Opts(12));
  std::uint64_t inserted = Prefill(map, 5000);
  EXPECT_EQ(inserted, 5000u);
  EXPECT_EQ(map.Size(), 5000u);
  std::uint64_t v;
  EXPECT_TRUE(map.Find(KeyForId(1234, 42), &v));
}

TEST(RunnerTest, LookupOnlyRunHitsEverything) {
  Map map(Opts(12));
  Prefill(map, 20000);
  LookupRunResult result = RunLookupOnly(map, 4, 10000, 20000);
  EXPECT_EQ(result.lookups, 40000u);
  EXPECT_DOUBLE_EQ(result.HitRate(), 1.0);
  EXPECT_GT(result.MopsPerSec(), 0.0);
}

TEST(RunnerTest, LookupOnlyMissesBeyondInsertedRange) {
  Map map(Opts(12));
  Prefill(map, 100);
  // Draw from a range 100x larger than what was inserted: mostly misses.
  LookupRunResult result = RunLookupOnly(map, 2, 5000, 10000);
  EXPECT_LT(result.HitRate(), 0.05);
}

TEST(RunnerTest, WorksWithOtherMapTypes) {
  ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(1 << 12);
  RunOptions ro;
  ro.threads = 2;
  ro.insert_fraction = 0.5;
  ro.total_inserts = 20000;
  RunResult result = RunMixedFill(map, ro);
  EXPECT_EQ(map.Size(), 20000u);
  EXPECT_GT(result.OverallMops(), 0.0);
}

}  // namespace
}  // namespace cuckoo
