#include "src/persist/wal.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"

namespace cuckoo {
namespace persist {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_wal_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

std::vector<WalRecord> ReplayAll(const std::string& dir, std::uint64_t start_lsn,
                                 WalReplayStats* stats, bool* ok,
                                 bool truncate_tail = true) {
  std::vector<WalRecord> records;
  std::string error;
  *ok = ReplayWal(dir, start_lsn, truncate_tail,
                  [&](const WalRecord& r) { records.push_back(r); }, stats, &error);
  if (!*ok && error.empty()) {
    ADD_FAILURE() << "ReplayWal failed without an error message";
  }
  return records;
}

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 100; ++i) {
      const std::string key = "key" + std::to_string(i);
      const std::uint64_t lsn =
          wal.Append(WalRecord::Type::kSet, key, "value" + std::to_string(i),
                     /*flags=*/7, /*expires_at=*/0, /*cas_id=*/i + 1);
      EXPECT_EQ(lsn, static_cast<std::uint64_t>(i + 1));
      wal.WaitDurable(lsn);
    }
    wal.Append(WalRecord::Type::kDelete, "key3", {}, 0, 0, 0);
    EXPECT_TRUE(wal.Flush());
    EXPECT_EQ(wal.DurableLsn(), 101u);
    wal.Shutdown();
  }
  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 1, &stats, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(records.size(), 101u);
  EXPECT_EQ(stats.records_applied, 101u);
  EXPECT_EQ(stats.next_lsn, 102u);
  EXPECT_FALSE(stats.truncated_tail);
  EXPECT_EQ(records[5].key, "key5");
  EXPECT_EQ(records[5].data, "value5");
  EXPECT_EQ(records[5].flags, 7u);
  EXPECT_EQ(records[5].cas_id, 6u);
  EXPECT_EQ(records[100].type, WalRecord::Type::kDelete);
  EXPECT_EQ(records[100].key, "key3");
  EXPECT_TRUE(records[100].data.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);  // strictly sequential
  }
}

TEST(WalTest, EmptyDirectoryReplaysNothing) {
  TempDir dir;
  WalReplayStats stats;
  bool ok = false;
  EXPECT_TRUE(ReplayAll(dir.path, 1, &stats, &ok).empty());
  EXPECT_TRUE(ok);
  EXPECT_EQ(stats.next_lsn, 1u);
  EXPECT_EQ(stats.segments, 0u);
}

TEST(WalTest, EmptySegmentIsValid) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    ASSERT_TRUE(wal.Open(options, 42));
    wal.Shutdown();  // header only, zero records
  }
  WalReplayStats stats;
  bool ok = false;
  EXPECT_TRUE(ReplayAll(dir.path, 1, &stats, &ok).empty());
  EXPECT_TRUE(ok);
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_FALSE(stats.truncated_tail);
  EXPECT_EQ(stats.next_lsn, 42u);  // continues where the segment would have
}

TEST(WalTest, TornTailIsTruncatedAndReplayIsIdempotent) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 10; ++i) {
      wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "k" + std::to_string(i), "v",
                                 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  // Simulate a torn write: half a record of garbage at the end of the file.
  std::vector<std::string> segments = ListFilesWithPrefix(dir.path, "wal-");
  ASSERT_EQ(segments.size(), 1u);
  const std::string seg_path = dir.path + "/" + segments.back();
  const std::uint64_t good_size = FileSize(seg_path);
  {
    AppendFile f;
    ASSERT_TRUE(f.Open(seg_path, /*truncate=*/false));
    ASSERT_TRUE(f.Append("torn-write-garbage-bytes"));
  }

  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 1, &stats, &ok);
  ASSERT_TRUE(ok);  // torn tail is tolerated, not an error
  EXPECT_EQ(records.size(), 10u);
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_EQ(FileSize(seg_path), good_size);  // tail dropped on disk

  // Second replay over the truncated file: same records, clean tail.
  WalReplayStats stats2;
  std::vector<WalRecord> records2 = ReplayAll(dir.path, 1, &stats2, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(records2.size(), 10u);
  EXPECT_FALSE(stats2.truncated_tail);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, records2[i].lsn);
    EXPECT_EQ(records[i].key, records2[i].key);
  }
}

TEST(WalTest, BitFlippedRecordAtTailIsTornNotCorrupt) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 5; ++i) {
      wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i),
                                 "payload", 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  std::vector<std::string> segments = ListFilesWithPrefix(dir.path, "wal-");
  ASSERT_EQ(segments.size(), 1u);
  const std::string seg_path = dir.path + "/" + segments.back();
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(seg_path, &bytes));
  bytes[bytes.size() - 4] ^= 0x20;  // flip a bit inside the LAST record
  ASSERT_TRUE(WriteFileAtomic(seg_path, bytes));

  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 1, &stats, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(records.size(), 4u);  // the flipped record is dropped as torn
  EXPECT_TRUE(stats.truncated_tail);
}

TEST(WalTest, BitFlippedRecordMidLogIsUnrecoverable) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 20; ++i) {
      wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i),
                                 "some-payload-bytes", 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  std::vector<std::string> segments = ListFilesWithPrefix(dir.path, "wal-");
  ASSERT_EQ(segments.size(), 1u);
  const std::string seg_path = dir.path + "/" + segments.back();
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(seg_path, &bytes));
  // Flip a bit in the FIRST record's payload (just past header + frame).
  bytes[internal::kWalHeaderSize + internal::kRecordFrameSize + 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(seg_path, bytes));

  WalReplayStats stats;
  std::string error;
  std::vector<WalRecord> records;
  const bool ok = ReplayWal(dir.path, 1, /*truncate_torn_tail=*/false,
                            [&](const WalRecord& r) { records.push_back(r); }, &stats,
                            &error);
  // Damage in the LAST segment is treated as a tail cut from the damage
  // point: nothing after it is applied, and the loss is visible to the
  // operator via truncated_tail + a large torn_tail_bytes (19 whole records
  // here), rather than silently skipping the bad record and replaying the
  // rest out of context.
  ASSERT_TRUE(ok);
  EXPECT_EQ(records.size(), 0u);
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_GT(stats.torn_tail_bytes, 19u * 8u);
}

TEST(WalTest, BitFlipInNonFinalSegmentFailsReplay) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    options.segment_bytes = 64;  // rotate after every batch
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 6; ++i) {
      // Flush each record so rotation happens between appends.
      wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i),
                                 "data-bytes-to-exceed-segment", 0, 0, i + 1));
      ASSERT_TRUE(wal.Flush());
    }
    wal.Shutdown();
  }
  std::vector<std::string> segments = ListFilesWithPrefix(dir.path, "wal-");
  ASSERT_GE(segments.size(), 2u);
  const std::string first_path = dir.path + "/" + segments.front();
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(first_path, &bytes));
  ASSERT_GT(bytes.size(), internal::kWalHeaderSize + internal::kRecordFrameSize + 2);
  bytes[internal::kWalHeaderSize + internal::kRecordFrameSize + 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(first_path, bytes));

  WalReplayStats stats;
  std::string error;
  const bool ok = ReplayWal(dir.path, 1, /*truncate_torn_tail=*/false,
                            [](const WalRecord&) {}, &stats, &error);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());
}

TEST(WalTest, RotationKeepsLsnContinuityAcrossSegments) {
  TempDir dir;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    options.segment_bytes = 256;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 50; ++i) {
      wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i),
                                 std::string(64, 'x'), 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  EXPECT_GE(ListFilesWithPrefix(dir.path, "wal-").size(), 2u);
  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 1, &stats, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(records.size(), 50u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);
  }
}

TEST(WalTest, RemoveSegmentsBelowDropsCoveredSegments) {
  TempDir dir;
  WriteAheadLog wal;
  WalOptions options;
  options.dir = dir.path;
  options.fsync_policy = FsyncPolicy::kAlways;
  options.segment_bytes = 128;
  ASSERT_TRUE(wal.Open(options, 1));
  for (int i = 0; i < 40; ++i) {
    wal.WaitDurable(
        wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i), std::string(64, 'y'),
                   0, 0, i + 1));
  }
  ASSERT_TRUE(wal.Flush());
  const std::size_t before = ListFilesWithPrefix(dir.path, "wal-").size();
  ASSERT_GE(before, 3u);

  wal.RemoveSegmentsBelow(20);  // a snapshot at LSN 20 covers 1..20
  const std::size_t after = ListFilesWithPrefix(dir.path, "wal-").size();
  EXPECT_LT(after, before);

  // Replay from 21 must still see every record 21..40.
  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 21, &stats, &ok);
  ASSERT_TRUE(ok);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().lsn, 21u);
  EXPECT_EQ(records.back().lsn, 40u);
  EXPECT_LE(stats.anchor_lsn, 21u);  // no gap: 21 still covered
  wal.Shutdown();
}

TEST(WalTest, IoErrorIsStickyAndFailsWaitDurable) {
  TempDir dir;
  WriteAheadLog wal;
  WalOptions options;
  options.dir = dir.path;
  options.fsync_policy = FsyncPolicy::kAlways;
  ASSERT_TRUE(wal.Open(options, 1));
  EXPECT_TRUE(wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "healthy", "v", 0, 0, 1)));

  wal.InjectIoErrorForTesting();
  // The record whose batch hit the I/O failure must NOT be promised durable.
  EXPECT_FALSE(wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "lost", "v", 0, 0, 2)));
  // The error is sticky: durability stays refused (instead of silently acking
  // with fsync disabled) until the log is reopened.
  EXPECT_FALSE(wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "after", "v", 0, 0, 3)));
  EXPECT_FALSE(wal.Flush());
  EXPECT_TRUE(wal.InErrorState());
  EXPECT_TRUE(wal.Stats().io_error);
  wal.Shutdown();
}

TEST(WalTest, RotationFsyncAdvancesDurableLsnUnderNonePolicy) {
  TempDir dir;
  WriteAheadLog wal;
  WalOptions options;
  options.dir = dir.path;
  options.fsync_policy = FsyncPolicy::kNone;
  options.segment_bytes = 128;  // rotate almost immediately
  ASSERT_TRUE(wal.Open(options, 1));
  for (int i = 0; i < 40; ++i) {
    wal.Append(WalRecord::Type::kSet, "key" + std::to_string(i), std::string(64, 'z'), 0,
               0, i + 1);
  }
  // kNone never fsyncs on the batch path, so only the pre-rotation fsync can
  // advance durable_lsn — it must, since the rotated-out data is on disk.
  for (int spin = 0; spin < 500 && wal.DurableLsn() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(wal.DurableLsn(), 0u);
  EXPECT_GE(wal.Stats().segments_created, 2u);
  EXPECT_GT(wal.Stats().fsyncs, 0u);
  wal.Shutdown();
}

TEST(WalTest, ReplayAnchorsPastStaleSegmentsBelowStartLsn) {
  TempDir dir;
  {
    // Old log: durable LSNs 1..10.
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    for (int i = 0; i < 10; ++i) {
      wal.WaitDurable(
          wal.Append(WalRecord::Type::kSet, "old" + std::to_string(i), "v", 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  {
    // A log reopened after recovering from a snapshot at LSN 25 that was
    // ahead of the durable WAL tail (crash under fsync=everysec/none before
    // the post-snapshot flush): segment wal-26 now sits next to wal-1 with
    // LSNs 11..25 existing nowhere but inside the snapshot.
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 26));
    for (int i = 0; i < 5; ++i) {
      wal.WaitDurable(
          wal.Append(WalRecord::Type::kSet, "new" + std::to_string(i), "v", 0, 0, i + 1));
    }
    wal.Shutdown();
  }
  // With the snapshot covering everything below 26, replay anchors at wal-26
  // and ignores the stale segment instead of tripping the continuity check.
  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 26, &stats, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().lsn, 26u);
  EXPECT_EQ(records.back().lsn, 30u);
  EXPECT_EQ(stats.segments_ignored, 1u);
  EXPECT_EQ(stats.anchor_lsn, 26u);

  // Without a snapshot covering the hole, the missing LSNs are real data
  // loss: replay from 1 must still fail loudly.
  WalReplayStats stats2;
  std::string error;
  EXPECT_FALSE(ReplayWal(dir.path, 1, /*truncate_torn_tail=*/false,
                         [](const WalRecord&) {}, &stats2, &error));
  EXPECT_NE(error.find("discontinuity"), std::string::npos) << error;
}

TEST(WalTest, ConcurrentAppendersGetSequentialLsnsAndGroupCommits) {
  TempDir dir;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 1));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
          wal.WaitDurable(wal.Append(WalRecord::Type::kSet, key, "v", 0, 0, 1));
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const WalStats stats = wal.Stats();
    EXPECT_EQ(stats.records_appended, static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(stats.durable_lsn, static_cast<std::uint64_t>(kThreads) * kPerThread);
    // Group commit: with 8 threads blocked on fsync, each fsync covers
    // multiple records, so there are strictly fewer fsyncs than acks.
    EXPECT_LT(stats.fsyncs, stats.records_appended);
    EXPECT_GT(stats.max_batch_records, 1u);
    wal.Shutdown();
  }
  WalReplayStats stats;
  bool ok = false;
  std::vector<WalRecord> records = ReplayAll(dir.path, 1, &stats, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::map<std::string, int> seen;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);  // no gaps, no duplicates, in order
    ++seen[records[i].key];
  }
  EXPECT_EQ(seen.size(), records.size());  // every key exactly once
}

}  // namespace
}  // namespace persist
}  // namespace cuckoo
