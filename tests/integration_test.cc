// Cross-module integration tests: every table type driven through the same
// bench harness, the paper's memory-efficiency claim checked end to end, and
// the factor-analysis variant chain (§6.1) validated for functional
// equivalence.
#include <cstdint>
#include <mutex>

#include "src/baselines/chaining_map.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/baselines/global_lock_map.h"
#include "src/benchkit/runner.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

constexpr std::uint64_t kKeys = 30000;

template <typename MapT>
void RunAndVerify(MapT& map, int threads) {
  RunOptions ro;
  ro.threads = threads;
  ro.insert_fraction = 0.5;
  ro.total_inserts = kKeys;
  RunResult result = RunMixedFill(map, ro);
  EXPECT_EQ(result.FailedInserts(), 0u);
  EXPECT_EQ(map.Size(), kKeys);
  // Spot-check contents: the runner inserts KeyForId(id, seed).
  typename MapT::ValueType v{};
  for (std::uint64_t id = 0; id < kKeys; id += 997) {
    EXPECT_TRUE(map.Find(KeyForId(id, ro.seed), &v)) << id;
  }
  EXPECT_GT(result.OverallMops(), 0.0);
}

TEST(IntegrationTest, AllTableTypesUnderTheSameHarness) {
  {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = 12;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    RunAndVerify(map, 4);
  }
  {
    FlatOptions o;
    o.bucket_count_log2 = 13;
    o.lock_after_discovery = true;
    o.search_mode = SearchMode::kBfs;
    FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(o);
    RunAndVerify(map, 4);
  }
  {
    ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(1 << 13);
    RunAndVerify(map, 4);
  }
  {
    GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, std::mutex> map;
    RunAndVerify(map, 2);
  }
  {
    GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, SpinLock> map;
    RunAndVerify(map, 2);
  }
}

TEST(IntegrationTest, CuckooUsesLessMemoryThanChainingDesigns) {
  // §6.2 / Figure 1 caption: cuckoo+ uses 2-3x less memory than the TBB-style
  // table for 16-byte pairs at the same key count.
  constexpr std::uint64_t kN = 100000;

  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 14;  // 131072 slots -> ~76% load
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t> cuckoo_map(o);
  ConcurrentChainingMap<std::uint64_t, std::uint64_t> tbb_like(1 << 14);
  ChainingMap<std::uint64_t, std::uint64_t> chaining;

  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(cuckoo_map.Insert(i, i), InsertResult::kOk);
    ASSERT_EQ(tbb_like.Insert(i, i), InsertResult::kOk);
    ASSERT_EQ(chaining.Insert(i, i), InsertResult::kOk);
  }
  double ratio_tbb = static_cast<double>(tbb_like.HeapBytes()) /
                     static_cast<double>(cuckoo_map.HeapBytes());
  EXPECT_GT(ratio_tbb, 1.2) << "pointer-chained table must cost more per item";
  EXPECT_GT(chaining.HeapBytes(), cuckoo_map.HeapBytes() / 2)
      << "sanity: chaining nodes are not free";
}

TEST(IntegrationTest, FactorAnalysisVariantsAgreeFunctionally) {
  // Every cumulative variant from Figure 5 inserts the same key set; all must
  // agree on the final contents.
  RtmForceUsable(0);
  FlatOptions base;
  base.bucket_count_log2 = 12;

  auto fill_and_checksum = [](auto& map) {
    for (std::uint64_t i = 0; i < 10000; ++i) {
      EXPECT_EQ(map.Insert(KeyForId(i), i), InsertResult::kOk);
    }
    std::uint64_t checksum = 0;
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
      EXPECT_TRUE(map.Find(KeyForId(i), &v));
      checksum += v;
    }
    return checksum;
  };

  FlatOptions cfg1 = base;  // "cuckoo"
  cfg1.search_mode = SearchMode::kDfs;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> v1(cfg1);

  FlatOptions cfg2 = cfg1;  // "+lock later"
  cfg2.lock_after_discovery = true;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> v2(cfg2);

  FlatOptions cfg3 = cfg2;  // "+BFS"
  cfg3.search_mode = SearchMode::kBfs;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> v3(cfg3);

  FlatOptions cfg4 = cfg3;  // "+prefetch"
  cfg4.prefetch = true;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> v4(cfg4);

  FlatCuckooMap<std::uint64_t, std::uint64_t, GlibcElided<SpinLock>> v5(cfg4);  // +TSX-glibc
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>> v6(cfg4);  // +TSX*

  std::uint64_t expected = fill_and_checksum(v1);
  EXPECT_EQ(fill_and_checksum(v2), expected);
  EXPECT_EQ(fill_and_checksum(v3), expected);
  EXPECT_EQ(fill_and_checksum(v4), expected);
  EXPECT_EQ(fill_and_checksum(v5), expected);
  EXPECT_EQ(fill_and_checksum(v6), expected);
  RtmForceUsable(-1);
}

TEST(IntegrationTest, ElisionStatsFlowThroughFlatMap) {
  RtmForceUsable(0);
  GlobalEmulatedRtmConfig().abort_permille = 300;
  FlatOptions o;
  o.bucket_count_log2 = 12;
  o.lock_after_discovery = true;
  o.search_mode = SearchMode::kBfs;
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>> map(o);
  RunOptions ro;
  ro.threads = 4;
  ro.insert_fraction = 1.0;
  ro.total_inserts = 20000;
  RunMixedFill(map, ro);
  auto s = map.global_lock().stats().Read();
  EXPECT_GT(s.commits, 0u);
  EXPECT_GT(s.TotalAborts(), 0u);
  EXPECT_GT(s.AbortRate(), 0.05);
  EXPECT_LT(s.AbortRate(), 0.95);
  GlobalEmulatedRtmConfig() = EmulatedRtmConfig{};
  RtmForceUsable(-1);
}

TEST(IntegrationTest, HighOccupancySegmentsAreSlower) {
  // The qualitative heart of Figures 5/9: insert throughput at 0.9-0.95
  // occupancy is lower than at low occupancy (more displacement work).
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 14;
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  RunOptions ro;
  ro.threads = 1;  // single thread: no scheduler noise in the comparison
  ro.total_inserts = static_cast<std::uint64_t>(map.SlotCount() * 0.95);
  RunResult result = RunMixedFill(map, ro);
  double low = result.MopsBetween(0.0, 0.79);
  double high = result.MopsBetween(0.94, 1.0);
  EXPECT_GT(low, high) << "fills must slow down near capacity";
}

}  // namespace
}  // namespace cuckoo
