#include "src/cuckoo/clock_cache.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Cache = ClockCache<std::uint64_t, std::uint64_t>;

Cache::Options SmallOpts(std::size_t log2 = 6) {  // 64 buckets * 8 = 512 slots
  Cache::Options o;
  o.bucket_count_log2 = log2;
  return o;
}

TEST(ClockCacheTest, GetSetDeleteRoundTrip) {
  Cache cache(SmallOpts());
  std::uint64_t v = 0;
  EXPECT_FALSE(cache.Get(1, &v));
  EXPECT_TRUE(cache.Set(1, 100));
  ASSERT_TRUE(cache.Get(1, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(cache.Set(1, 200));  // overwrite
  cache.Get(1, &v);
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_TRUE(cache.Delete(1));
  EXPECT_FALSE(cache.Delete(1));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(ClockCacheTest, CapacityIsNeverExceeded) {
  Cache cache(SmallOpts());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(cache.Set(i, i)) << i;
    ASSERT_LE(cache.Size(), cache.Capacity());
  }
  EXPECT_GT(cache.Stats().evictions, 0u);
  // Cache remains nearly full (evictions make room one victim at a time).
  EXPECT_GT(cache.LoadFactor(), 0.8);
}

TEST(ClockCacheTest, EveryResidentKeyIsReadable) {
  Cache cache(SmallOpts());
  for (std::uint64_t i = 0; i < 3000; ++i) {
    cache.Set(i, i * 2);
  }
  // Whatever survived eviction must read back with the right value.
  std::uint64_t readable = 0;
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    if (cache.Get(i, &v)) {
      ASSERT_EQ(v, i * 2) << i;
      ++readable;
    }
  }
  EXPECT_EQ(readable, cache.Size());
}

TEST(ClockCacheTest, RecentlyReadKeysSurviveEviction) {
  Cache cache(SmallOpts());
  const std::size_t cap = cache.Capacity();
  // Fill to 90% (no evictions yet — displacement still finds room) with a
  // "hot" working set in the first 10% of keys.
  const std::uint64_t resident = cap * 9 / 10;
  for (std::uint64_t i = 0; i < resident; ++i) {
    ASSERT_TRUE(cache.Set(i, i));
  }
  ASSERT_EQ(cache.Stats().evictions, 0u);
  const std::uint64_t hot = resident / 10;
  std::uint64_t v;
  // Flood with cold traffic while the hot set keeps being read (CLOCK is a
  // recency approximation: the advantage exists only while reference bits
  // are re-set between sweeps).
  for (std::uint64_t i = resident; i < resident + cap; ++i) {
    cache.Get(i % hot, &v);
    cache.Get((i * 7) % hot, &v);
    ASSERT_TRUE(cache.Set(i, i));
  }
  std::uint64_t hot_survivors = 0;
  for (std::uint64_t i = 0; i < hot; ++i) {
    if (cache.Get(i, &v)) {
      ++hot_survivors;
    }
  }
  std::uint64_t cold_survivors = 0;
  for (std::uint64_t i = hot; i < resident; ++i) {
    if (cache.Get(i, &v)) {
      ++cold_survivors;
    }
  }
  double hot_rate = static_cast<double>(hot_survivors) / static_cast<double>(hot);
  double cold_rate = static_cast<double>(cold_survivors) / static_cast<double>(resident - hot);
  EXPECT_GT(hot_rate, cold_rate) << "CLOCK must prefer evicting unreferenced entries";
  EXPECT_GT(hot_rate, 0.5);
}

TEST(ClockCacheTest, HitRateTracksZipfSkew) {
  // A Zipf-skewed workload over a key space 8x the capacity should still get
  // a decent hit rate because the head of the distribution stays resident.
  Cache cache(SmallOpts(8));  // 2048 slots
  ZipfGenerator zipf(cache.Capacity() * 8, 0.9, 3);
  std::uint64_t v;
  for (int i = 0; i < 200000; ++i) {
    std::uint64_t key = zipf.Next();
    if (!cache.Get(key, &v)) {
      cache.Set(key, key);
    }
  }
  EXPECT_GT(cache.Stats().HitRate(), 0.5);
  EXPECT_GT(cache.Stats().evictions, 0u);
}

TEST(ClockCacheTest, UniformTrafficGetsLowerHitRateThanZipf) {
  auto run = [](double theta) {
    Cache cache(SmallOpts(8));
    ZipfGenerator gen(cache.Capacity() * 8, theta, 3);
    std::uint64_t v;
    for (int i = 0; i < 100000; ++i) {
      std::uint64_t key = gen.Next();
      if (!cache.Get(key, &v)) {
        cache.Set(key, key);
      }
    }
    return cache.Stats().HitRate();
  };
  EXPECT_GT(run(0.9), run(0.0));
}

TEST(ClockCacheTest, ConcurrentMixedTraffic) {
  Cache cache(SmallOpts(9));
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(500 + t);
      std::uint64_t v;
      for (int i = 0; i < 30000; ++i) {
        std::uint64_t key = rng.NextBelow(20000);
        if (rng.NextBelow(10) < 7) {
          cache.Get(key, &v);
        } else if (rng.NextBelow(10) < 9) {
          if (!cache.Set(key, key)) {
            failures.fetch_add(1);
          }
        } else {
          cache.Delete(key);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_LE(cache.Size(), cache.Capacity());
  // Post-churn integrity: every resident key reads back equal to itself.
  std::uint64_t v;
  std::uint64_t checked = 0;
  for (std::uint64_t key = 0; key < 20000; ++key) {
    if (cache.Get(key, &v)) {
      ASSERT_EQ(v, key);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ClockCacheTest, StatsAccounting) {
  Cache cache(SmallOpts());
  cache.Set(1, 1);
  std::uint64_t v;
  cache.Get(1, &v);
  cache.Get(2, &v);
  auto s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.sets, 1u);
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);
}

// ---- Byte-budget mode (the hot-value tier in front of the value log) -------

TEST(ClockCacheTest, ByteCapacityIsNeverExceeded) {
  Cache::Options o = SmallOpts();
  o.capacity_bytes = 10 * 1024;
  Cache cache(o);
  // Entries of varying charge; the byte footprint must stay under budget
  // even though the slot count alone would allow far more.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::size_t charge = 64 + (i % 7) * 100;
    ASSERT_TRUE(cache.Set(i, i, charge)) << i;
    ASSERT_LE(cache.Stats().bytes, 10u * 1024u) << i;
  }
  EXPECT_GT(cache.Stats().evictions, 0u);
  EXPECT_GT(cache.Stats().bytes, 0u);
}

TEST(ClockCacheTest, OversizedChargeIsRefusedNotLooped) {
  Cache::Options o = SmallOpts();
  o.capacity_bytes = 1024;
  Cache cache(o);
  EXPECT_FALSE(cache.Set(1, 1, 4096));  // can never fit
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Set(2, 2, 512));  // within budget still works
  EXPECT_TRUE(cache.Contains(2));
}

TEST(ClockCacheTest, OverwriteAdjustsByteAccounting) {
  Cache::Options o = SmallOpts();
  o.capacity_bytes = 10 * 1024;
  Cache cache(o);
  ASSERT_TRUE(cache.Set(1, 1, 1000));
  EXPECT_EQ(cache.Stats().bytes, 1000u);
  ASSERT_TRUE(cache.Set(1, 2, 300));  // overwrite with a smaller charge
  EXPECT_EQ(cache.Stats().bytes, 300u);
  ASSERT_TRUE(cache.Delete(1));
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ClockCacheTest, OnEvictFiresForEvictionsAndDeletes) {
  Cache::Options o = SmallOpts(/*log2=*/2);  // 4 buckets * 8 = 32 slots
  o.capacity_bytes = 2048;
  std::atomic<std::uint64_t> reclaimed{0};
  o.on_evict = [&](const std::uint64_t& key, const std::uint64_t& value) {
    EXPECT_EQ(key, value);  // we always store key == value here
    reclaimed.fetch_add(1, std::memory_order_relaxed);
  };
  Cache cache(o);
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(cache.Set(i, i, 256));  // 8 fit; the rest must evict
  }
  EXPECT_GT(reclaimed.load(), 0u);
  EXPECT_EQ(reclaimed.load(), cache.Stats().evictions);
}

TEST(ClockCacheTest, GetOrAdmitFetchesOnceThenHits) {
  Cache::Options o = SmallOpts();
  o.capacity_bytes = 64 * 1024;
  Cache cache(o);
  std::atomic<int> fetches{0};
  auto fetch = [&](std::uint64_t* out, std::size_t* charge) {
    fetches.fetch_add(1);
    *out = 42;
    *charge = 100;
    return true;
  };
  std::uint64_t v = 0;
  ASSERT_TRUE(cache.GetOrAdmit(7, &v, fetch));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(fetches.load(), 1);
  v = 0;
  ASSERT_TRUE(cache.GetOrAdmit(7, &v, fetch));  // now resident: no fetch
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(fetches.load(), 1);
  EXPECT_EQ(cache.Stats().bytes, 100u);
}

TEST(ClockCacheTest, GetOrAdmitPropagatesFetchFailure) {
  Cache cache(SmallOpts());
  std::uint64_t v = 0;
  EXPECT_FALSE(cache.GetOrAdmit(
      9, &v, [](std::uint64_t*, std::size_t*) { return false; }));
  EXPECT_FALSE(cache.Contains(9));
}

TEST(ClockCacheTest, ByteModeConcurrentChurnStaysUnderBudget) {
  Cache::Options o = SmallOpts(/*log2=*/4);
  o.capacity_bytes = 32 * 1024;
  std::atomic<std::uint64_t> evict_count{0};
  o.on_evict = [&](const std::uint64_t&, const std::uint64_t&) {
    evict_count.fetch_add(1, std::memory_order_relaxed);
  };
  Cache cache(o);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(0xC0FFEE + t);
      for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = rng.Next() % 512;
        std::uint64_t v;
        if (rng.Next() % 2 == 0) {
          cache.Set(key, key, 64 + key % 1000);
        } else if (cache.Get(key, &v)) {
          EXPECT_EQ(v, key);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(cache.Stats().bytes, 32u * 1024u);
  EXPECT_EQ(cache.Stats().evictions, evict_count.load());
}

}  // namespace
}  // namespace cuckoo
