// Online fuzzy snapshots taken while writers keep mutating the table: the
// walk must never block writers globally, must observe every key that was
// present (and unmodified) before the walk started, and must produce
// well-formed entries even as cuckoo displacement shuffles buckets under it.
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/kvserver/kv_service.h"
#include "src/persist/durability.h"
#include "src/persist/recovery.h"

namespace cuckoo {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_fuzzy_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

std::string Drive(KvService* service, const std::string& input) {
  auto conn = service->Connect();
  std::string out;
  conn.Drive(input, &out);
  return out;
}

void SetKey(KvService* service, const std::string& key, const std::string& value) {
  ASSERT_EQ(Drive(service, "set " + key + " 0 0 " + std::to_string(value.size()) +
                               "\r\n" + value + "\r\n"),
            "STORED\r\n");
}

TEST(FuzzySnapshotTest, WalkSeesAllStableKeysWhileWritersRun) {
  // Pre-size so the write load cannot trigger an expansion mid-walk (an
  // expansion aborts the attempt; retry behaviour is covered separately).
  KvService::Options options;
  options.initial_bucket_count_log2 = 16;
  KvService service(options);

  constexpr int kStableKeys = 10000;
  constexpr int kWriters = 4;
  constexpr int kHotKeys = 2000;

  for (int i = 0; i < kStableKeys; ++i) {
    SetKey(&service, "stable-" + std::to_string(i), "s" + std::to_string(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writer_ops{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto conn = service.Connect();
      std::string out;
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Churn a bounded hot set: inserts, overwrites, and deletes force
        // version bumps and cuckoo displacement in buckets the walk visits.
        const std::string key = "hot-" + std::to_string((w * kHotKeys + i) % (kWriters * kHotKeys));
        const std::string value = "w" + std::to_string(w) + "-" + std::to_string(i);
        out.clear();
        conn.Drive("set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" +
                       value + "\r\n",
                   &out);
        ASSERT_EQ(out, "STORED\r\n");
        if (i % 7 == 0) {
          out.clear();
          conn.Drive("delete " + key + "\r\n", &out);
        }
        ++i;
        writer_ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the writers get going so the walk really races with them.
  while (writer_ops.load(std::memory_order_relaxed) < 1000) {
    std::this_thread::yield();
  }

  std::unordered_map<std::string, std::string> captured;
  std::uint64_t emitted = 0;
  KvService::StoreMap::SnapshotWalkStats walk;
  const bool complete = service.TrySnapshotEntries(
      [&](const std::string& key, const KvService::StoredValue& value) {
        // Duplicates are allowed (displacement side-log); last one wins.
        captured[key] = value.data;
        ++emitted;
      },
      &walk);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) {
    t.join();
  }
  ASSERT_TRUE(complete) << "walk aborted by expansion despite pre-sizing";

  // Every key that existed before the walk and was never touched by a
  // writer must appear in the fuzzy image with its exact value.
  for (int i = 0; i < kStableKeys; ++i) {
    const std::string key = "stable-" + std::to_string(i);
    auto it = captured.find(key);
    ASSERT_NE(it, captured.end()) << "snapshot lost " << key;
    EXPECT_EQ(it->second, "s" + std::to_string(i));
  }
  // Hot keys may or may not appear (they are being inserted/deleted), but
  // whatever was captured must be a well-formed writer value.
  for (const auto& [key, value] : captured) {
    if (key.rfind("hot-", 0) == 0) {
      EXPECT_EQ(value[0], 'w') << key << " held torn value " << value;
    }
  }
  EXPECT_EQ(walk.buckets, std::uint64_t{1} << 16);
  EXPECT_GT(walk.empty_skips, 0u);  // most of the pre-sized table is empty
  EXPECT_GE(emitted, captured.size());

  // Writers made progress while the walk ran (it holds at most one stripe
  // at a time, so it can never starve the write path globally).
  EXPECT_GT(writer_ops.load(std::memory_order_relaxed), 1000u);
}

TEST(FuzzySnapshotTest, WalkDuringIncrementalMigrationCapturesEveryStableKey) {
  // Small table + few stripes: every expansion past the first is an
  // incremental (two-core) migration window, so the walk runs while elements
  // are split across the live and draining cores and while the migrator and
  // piggybacking writers move them mid-walk.
  GeneralCuckooMap<std::string, std::string>::Options o;
  o.initial_bucket_count_log2 = 6;
  o.stripe_count = 8;
  GeneralCuckooMap<std::string, std::string> map(o);

  constexpr int kStableKeys = 3000;
  for (int i = 0; i < kStableKeys; ++i) {
    ASSERT_EQ(map.Insert("stable-" + std::to_string(i), "s" + std::to_string(i)),
              InsertResult::kOk);
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Keep doubling the table: every walk attempt races a migration window.
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      map.Insert("churn-" + std::to_string(i), "c");
      ++i;
    }
  });

  // The walk aborts when the live core swaps under it (bucket indices are
  // not comparable across cores); the caller's contract is to retry. With
  // expansions firing continuously, a handful of attempts must still land.
  std::unordered_map<std::string, std::string> captured;
  bool complete = false;
  for (int attempt = 0; attempt < 200 && !complete; ++attempt) {
    captured.clear();
    complete = map.TrySnapshotBuckets(
        [&](const std::string& key, const std::string& value) { captured[key] = value; });
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  ASSERT_TRUE(complete) << "snapshot walk never completed across 200 attempts";

  const MapStatsSnapshot stats = map.Stats();
  EXPECT_GT(stats.migrations_started, 0)
      << "the churn must have opened incremental windows";
  for (int i = 0; i < kStableKeys; ++i) {
    const std::string key = "stable-" + std::to_string(i);
    auto it = captured.find(key);
    ASSERT_NE(it, captured.end())
        << "snapshot lost " << key << " across the two-core window";
    EXPECT_EQ(it->second, "s" + std::to_string(i));
  }
}

TEST(FuzzySnapshotTest, DurableSnapshotDuringExpansionRecoversEveryKey) {
  // End-to-end: WAL-attached inserts keep doubling the store while a durable
  // snapshot walks it; recovery from snapshot + WAL tail must reproduce every
  // acknowledged key. stripe_count=8 makes the second and later expansions
  // incremental, so the walk and the WAL critical sections both cross the
  // two-core window.
  TempDir dir;
  constexpr int kPhase1 = 500;
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 2000;
  {
    KvService::Options options;
    options.initial_bucket_count_log2 = 6;
    options.stripe_count = 8;
    KvService service(options);
    persist::DurabilityManager durability(&service);
    persist::DurabilityOptions dopts;
    dopts.dir = dir.path;
    std::string error;
    ASSERT_TRUE(durability.Start(dopts, &error)) << error;

    for (int i = 0; i < kPhase1; ++i) {
      SetKey(&service, "p1-" + std::to_string(i), "v" + std::to_string(i));
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        auto conn = service.Connect();
        std::string out;
        for (int i = 0; i < kPerWriter; ++i) {
          const std::string key = "p2-" + std::to_string(w) + ":" + std::to_string(i);
          out.clear();
          conn.Drive("set " + key + " 0 0 1\r\nx\r\n", &out);
          ASSERT_EQ(out, "STORED\r\n");
        }
      });
    }
    // Snapshot mid-churn: the walk races live expansions and retries on core
    // swap; the durability layer bounds the retries.
    ASSERT_TRUE(durability.TriggerSnapshot());
    EXPECT_TRUE(durability.WaitForSnapshot());
    for (auto& t : writers) {
      t.join();
    }
    const MapStatsSnapshot table = service.StoreStats();
    EXPECT_GT(table.migrations_started, 0)
        << "the fill must have crossed at least one incremental expansion";
    durability.Stop();
  }

  KvService restored;
  persist::RecoveryStats stats;
  std::string error;
  ASSERT_TRUE(persist::RecoverKvService(dir.path, &restored, &stats, &error)) << error;
  EXPECT_EQ(restored.ItemCount(),
            static_cast<std::uint64_t>(kPhase1 + kWriters * kPerWriter));
  auto conn = restored.Connect();
  for (int i = 0; i < kPhase1; ++i) {
    std::string out;
    conn.Drive("get p1-" + std::to_string(i) + "\r\n", &out);
    ASSERT_NE(out.find("v" + std::to_string(i)), std::string::npos) << i;
  }
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      const std::string key = "p2-" + std::to_string(w) + ":" + std::to_string(i);
      std::string out;
      conn.Drive("get " + key + "\r\n", &out);
      ASSERT_NE(out.find("END"), std::string::npos);
      ASSERT_NE(out.find("VALUE"), std::string::npos) << key << " lost";
    }
  }
}

TEST(FuzzySnapshotTest, WalkOnQuiescentTableIsExact) {
  KvService service;
  for (int i = 0; i < 500; ++i) {
    SetKey(&service, "k" + std::to_string(i), std::string(1 + i % 40, 'x'));
  }
  ASSERT_EQ(Drive(&service, "delete k123\r\n"), "DELETED\r\n");

  std::unordered_map<std::string, std::string> captured;
  KvService::StoreMap::SnapshotWalkStats walk;
  ASSERT_TRUE(service.TrySnapshotEntries(
      [&](const std::string& key, const KvService::StoredValue& value) {
        EXPECT_TRUE(captured.emplace(key, value.data).second) << "duplicate " << key;
      },
      &walk));
  EXPECT_EQ(captured.size(), 499u);
  EXPECT_EQ(captured.count("k123"), 0u);
  EXPECT_EQ(captured["k7"], std::string(8, 'x'));
  EXPECT_EQ(walk.entries, 499u);
  EXPECT_EQ(walk.displaced_entries, 0u);  // no concurrent writers
}

}  // namespace
}  // namespace cuckoo
