// Unit tests for the vectorized tag-probe kernels (src/cuckoo/simd_probe.h):
// mask correctness at every dispatch level the host supports, bit-for-bit
// scalar/SSE2/AVX2 equivalence on random tag groups, and TagGroup snapshots
// taken under concurrent tag churn (the seqlock-reader shape, so the TSan job
// exercises the sanctioned LoadTagsVector race annotation).

#include "src/cuckoo/simd_probe.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/cuckoo/table_core.h"

namespace cuckoo {
namespace {

using simd::ProbeLevel;
using simd::TagGroup;

std::vector<ProbeLevel> SupportedLevels() {
  std::vector<ProbeLevel> levels{ProbeLevel::kScalar};
  if (simd::ProbeLevelSupported(ProbeLevel::kSse2)) {
    levels.push_back(ProbeLevel::kSse2);
  }
  if (simd::ProbeLevelSupported(ProbeLevel::kAvx2)) {
    levels.push_back(ProbeLevel::kAvx2);
  }
  return levels;
}

class ScopedProbeLevel {
 public:
  explicit ScopedProbeLevel(ProbeLevel level)
      : prev_(simd::SetProbeLevelForTesting(level)) {}
  ~ScopedProbeLevel() { simd::SetProbeLevelForTesting(prev_); }

 private:
  ProbeLevel prev_;
};

// Independent reference implementation (deliberately not the kernel's own
// scalar path, so a shared bug can't self-certify).
template <int B>
std::uint32_t RefMatch(const TagGroup<B>& g, std::uint8_t tag) {
  std::uint32_t mask = 0;
  for (int s = 0; s < B; ++s) {
    if (g.bytes[s] == tag) {
      mask |= 1u << s;
    }
  }
  return mask;
}

template <int B>
TagGroup<B> MakeGroup(std::uint8_t fill) {
  TagGroup<B> g;
  for (int s = 0; s < B; ++s) {
    g.bytes[s] = fill;
  }
  return g;
}

constexpr std::uint32_t SlotBits(int b) { return (1u << b) - 1; }

// ---- per-B kernel semantics, run at one dispatch level ---------------------

template <int B>
void CheckKernelSemantics() {
  // All-empty bucket: every slot is an empty candidate, nothing matches a
  // non-zero tag.
  const TagGroup<B> empty = MakeGroup<B>(0);
  EXPECT_EQ(simd::EmptySlotMask<B>(empty), SlotBits(B));
  EXPECT_EQ(simd::MatchTagMask<B>(empty, 0xab), 0u);
  EXPECT_EQ(simd::FirstSlot(simd::EmptySlotMask<B>(empty)), 0);

  // All slots hold the probed tag: full mask, and bits >= B stay zero (the
  // zeroed filler lanes of a partial vector load must never leak through).
  const TagGroup<B> full = MakeGroup<B>(0xab);
  EXPECT_EQ(simd::MatchTagMask<B>(full, 0xab), SlotBits(B));
  EXPECT_EQ(simd::MatchTagMask<B>(full, 0xab) & ~SlotBits(B), 0u);
  EXPECT_EQ(simd::EmptySlotMask<B>(full), 0u);
  EXPECT_EQ(simd::FirstSlot(simd::EmptySlotMask<B>(full)), -1);

  // Duplicate tags in distinct slots: every copy is a candidate (partial-key
  // hashing makes duplicates routine, and the probe must surface all of them
  // for the full-key compare).
  TagGroup<B> dup = MakeGroup<B>(0x11);
  dup.bytes[0] = 0x7f;
  dup.bytes[B - 1] = 0x7f;
  const std::uint32_t dup_mask = simd::MatchTagMask<B>(dup, 0x7f);
  EXPECT_EQ(dup_mask, (1u << 0) | (1u << (B - 1)));

  // Boundary slots: first and last slot of the group resolve to the right
  // bit positions (catches lane-order bugs in the partial loads).
  for (const int slot : {0, B - 1}) {
    TagGroup<B> g = MakeGroup<B>(0x22);
    g.bytes[slot] = 0x33;
    EXPECT_EQ(simd::MatchTagMask<B>(g, 0x33), 1u << slot) << "slot " << slot;
    g.bytes[slot] = 0;
    EXPECT_EQ(simd::EmptySlotMask<B>(g), 1u << slot) << "slot " << slot;
  }

  // Probing for tag 0 is exactly the empty-slot probe: occupied slots (any
  // non-zero tag) must not match it.
  TagGroup<B> mixed = MakeGroup<B>(0xee);
  mixed.bytes[B / 2] = 0;
  EXPECT_EQ(simd::MatchTagMask<B>(mixed, 0), 1u << (B / 2));
  EXPECT_EQ(simd::MatchTagMask<B>(mixed, 0), simd::EmptySlotMask<B>(mixed));

  // Dual-bucket layout: bits [0, B) come from g1, bits [B, 2B) from g2.
  TagGroup<B> g1 = MakeGroup<B>(0x44);
  TagGroup<B> g2 = MakeGroup<B>(0x55);
  g1.bytes[1 % B] = 0x99;
  g2.bytes[B - 1] = 0x99;
  const std::uint32_t m2 = simd::MatchTagMask2<B>(g1, g2, 0x99);
  EXPECT_EQ(m2, (1u << (1 % B)) | (1u << (B + B - 1)));
  EXPECT_EQ(simd::MatchTagMask2<B>(g1, g2, 0x44), SlotBits(B) & ~(1u << (1 % B)));
  EXPECT_EQ(simd::MatchTagMask2<B>(g1, g2, 0x55) >> B,
            SlotBits(B) & ~(1u << (B - 1)));
}

template <int B>
void CheckAllLevels() {
  for (const ProbeLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::ProbeLevelName(level));
    ScopedProbeLevel scoped(level);
    CheckKernelSemantics<B>();
  }
}

TEST(SimdProbeTest, KernelSemanticsB4) { CheckAllLevels<4>(); }
TEST(SimdProbeTest, KernelSemanticsB8) { CheckAllLevels<8>(); }
TEST(SimdProbeTest, KernelSemanticsB16) { CheckAllLevels<16>(); }
// Non-power-of-two associativity has no vector kernel; every level must fall
// back to the same scalar answer instead of faulting or mis-masking.
TEST(SimdProbeTest, KernelSemanticsB5Fallback) { CheckAllLevels<5>(); }

// ---- cross-level bit-for-bit equivalence on random groups ------------------

template <int B>
void CheckRandomEquivalence() {
  Xorshift128Plus rng(0x51c00 + B);
  for (int iter = 0; iter < 2000; ++iter) {
    TagGroup<B> g1;
    TagGroup<B> g2;
    for (int s = 0; s < B; ++s) {
      // Small byte range forces frequent duplicates, zeros, and cross-bucket
      // collisions — the interesting mask shapes.
      g1.bytes[s] = static_cast<std::uint8_t>(rng.NextBelow(5));
      g2.bytes[s] = static_cast<std::uint8_t>(rng.NextBelow(5));
    }
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.NextBelow(5));
    const std::uint32_t want1 = RefMatch<B>(g1, tag);
    const std::uint32_t want2 = want1 | (RefMatch<B>(g2, tag) << B);
    for (const ProbeLevel level : SupportedLevels()) {
      SCOPED_TRACE(simd::ProbeLevelName(level));
      ScopedProbeLevel scoped(level);
      EXPECT_EQ(simd::MatchTagMask<B>(g1, tag), want1);
      EXPECT_EQ(simd::MatchTagMask2<B>(g1, g2, tag), want2);
      EXPECT_EQ(simd::EmptySlotMask<B>(g1), RefMatch<B>(g1, 0));
    }
  }
}

TEST(SimdProbeTest, RandomGroupsAllLevelsAgreeB4) { CheckRandomEquivalence<4>(); }
TEST(SimdProbeTest, RandomGroupsAllLevelsAgreeB8) { CheckRandomEquivalence<8>(); }
TEST(SimdProbeTest, RandomGroupsAllLevelsAgreeB16) { CheckRandomEquivalence<16>(); }

// ---- candidate-mask iteration helpers --------------------------------------

TEST(SimdProbeTest, FirstSlotAndNextCandidate) {
  EXPECT_EQ(simd::FirstSlot(0), -1);
  EXPECT_EQ(simd::FirstSlot(1), 0);
  EXPECT_EQ(simd::FirstSlot(0x8000u), 15);

  std::uint32_t mask = (1u << 2) | (1u << 7) | (1u << 31);
  EXPECT_EQ(simd::NextCandidate(&mask), 2);
  EXPECT_EQ(simd::NextCandidate(&mask), 7);
  EXPECT_EQ(simd::NextCandidate(&mask), 31);
  EXPECT_EQ(mask, 0u);
}

// ---- dispatch plumbing ------------------------------------------------------

TEST(SimdProbeTest, ProbeLevelNames) {
  EXPECT_STREQ(simd::ProbeLevelName(ProbeLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::ProbeLevelName(ProbeLevel::kSse2), "sse2");
  EXPECT_STREQ(simd::ProbeLevelName(ProbeLevel::kAvx2), "avx2");
}

TEST(SimdProbeTest, ProbeLevelFromString) {
  ProbeLevel level = ProbeLevel::kAvx2;
  EXPECT_TRUE(simd::ProbeLevelFromString("scalar", &level));
  EXPECT_EQ(level, ProbeLevel::kScalar);
  EXPECT_TRUE(simd::ProbeLevelFromString("sse2", &level));
  EXPECT_EQ(level, ProbeLevel::kSse2);
  EXPECT_TRUE(simd::ProbeLevelFromString("avx2", &level));
  EXPECT_EQ(level, ProbeLevel::kAvx2);
  EXPECT_FALSE(simd::ProbeLevelFromString("", &level));
  EXPECT_FALSE(simd::ProbeLevelFromString("AVX2", &level));
  EXPECT_FALSE(simd::ProbeLevelFromString("sse4", &level));
  EXPECT_FALSE(simd::ProbeLevelFromString(nullptr, &level));
}

TEST(SimdProbeTest, ActiveLevelIsSupported) {
  EXPECT_TRUE(simd::ProbeLevelSupported(simd::ActiveProbeLevel()));
  // BestSupportedProbeLevel is monotone: if AVX2 is in, SSE2 must be too.
  if (simd::ProbeLevelSupported(ProbeLevel::kAvx2)) {
    EXPECT_TRUE(simd::ProbeLevelSupported(ProbeLevel::kSse2));
  }
}

TEST(SimdProbeTest, SetProbeLevelClampsToSupport) {
  const ProbeLevel original = simd::ActiveProbeLevel();
  const ProbeLevel prev = simd::SetProbeLevelForTesting(ProbeLevel::kAvx2);
  EXPECT_EQ(prev, original);
  if (simd::ProbeLevelSupported(ProbeLevel::kAvx2)) {
    EXPECT_EQ(simd::ActiveProbeLevel(), ProbeLevel::kAvx2);
  } else {
    // Unsupported request degrades to the best the hardware has.
    EXPECT_EQ(simd::ActiveProbeLevel(), simd::BestSupportedProbeLevel());
  }
  simd::SetProbeLevelForTesting(original);
}

// ---- vector probes under seqlock-style tag churn ---------------------------

// The optimistic-read shape without the map on top: reader threads take
// LoadTagsVector snapshots and run the kernels while a writer mutates the
// same bucket's tags through the sanctioned SetTag path. Under TSan the
// snapshot is element-wise relaxed, so this is the test that proves the
// vectorized probe introduces no new data race. Snapshots are racy by
// design; the invariant is that every observed mask is built from bytes the
// writer actually stored (tags alternate between 0 and kLiveTag, so any
// other match would mean a torn or fabricated byte).
TEST(SimdProbeTest, SnapshotProbesUnderTagChurn) {
  constexpr int kB = 8;
  constexpr std::uint8_t kLiveTag = 0x5a;
  TableCore<std::uint64_t, std::uint64_t, kB> core(2);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int s = 0; s < kB; ++s) {
        core.SetTag(0, s, (round + static_cast<std::uint64_t>(s)) % 2 == 0 ? kLiveTag : 0);
      }
      ++round;
    }
  });

  std::vector<std::thread> readers;
  for (const ProbeLevel level : SupportedLevels()) {
    readers.emplace_back([&, level] {
      for (int iter = 0; iter < 50000; ++iter) {
        ScopedProbeLevel scoped(level);
        const auto g = core.LoadTagsVector(0);
        const std::uint32_t live = simd::MatchTagMask<kB>(g, kLiveTag);
        const std::uint32_t hole = simd::EmptySlotMask<kB>(g);
        // Every byte is 0 or kLiveTag at all times, so the two masks must
        // partition the bucket exactly — even on torn snapshots.
        ASSERT_EQ(live ^ hole, SlotBits(kB));
        ASSERT_EQ(simd::MatchTagMask<kB>(g, 0x77), 0u);
      }
    });
  }

  for (std::thread& t : readers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace cuckoo
