#include "src/cuckoo/cuckoo_map.h"

#include <array>
#include <cstdint>
#include <thread>
#include <vector>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

Map::Options SmallOpts(std::size_t log2 = 10, bool expand = true) {
  Map::Options o;
  o.initial_bucket_count_log2 = log2;
  o.auto_expand = expand;
  return o;
}

TEST(CuckooMapTest, EmptyMapBasics) {
  Map map(SmallOpts());
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.SlotCount(), (1u << 10) * 8);
  EXPECT_DOUBLE_EQ(map.LoadFactor(), 0.0);
  std::uint64_t v;
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_FALSE(map.Update(1, 2));
}

TEST(CuckooMapTest, InsertFindRoundTrip) {
  Map map(SmallOpts());
  EXPECT_EQ(map.Insert(10, 100), InsertResult::kOk);
  EXPECT_EQ(map.Size(), 1u);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 100u);
}

TEST(CuckooMapTest, DuplicateInsertRejected) {
  Map map(SmallOpts());
  EXPECT_EQ(map.Insert(10, 100), InsertResult::kOk);
  EXPECT_EQ(map.Insert(10, 200), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 100u) << "duplicate insert must not overwrite";
  EXPECT_EQ(map.Size(), 1u);
  EXPECT_EQ(map.Stats().duplicate_inserts, 1);
}

TEST(CuckooMapTest, UpsertOverwrites) {
  Map map(SmallOpts());
  EXPECT_EQ(map.Upsert(10, 100), InsertResult::kOk);
  EXPECT_EQ(map.Upsert(10, 200), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(CuckooMapTest, UpsertWithInsertsWhenAbsent) {
  Map map(SmallOpts());
  EXPECT_EQ(map.UpsertWith(5, [](std::uint64_t& v) { v += 100; }, 7), InsertResult::kOk);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(5, &v));
  EXPECT_EQ(v, 7u) << "initial value inserted unmodified; fn only runs on existing entries";
}

TEST(CuckooMapTest, UpsertWithModifiesWhenPresent) {
  Map map(SmallOpts());
  map.Insert(5, 10);
  EXPECT_EQ(map.UpsertWith(5, [](std::uint64_t& v) { v *= 3; }, 0), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  map.Find(5, &v);
  EXPECT_EQ(v, 30u);
}

TEST(CuckooMapTest, UpsertWithIsAtomicAcrossThreads) {
  Map map(SmallOpts());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map] {
      for (int i = 0; i < kIncrements; ++i) {
        map.UpsertWith(42, [](std::uint64_t& v) { ++v; }, 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(42, &v));
  // One thread inserts the initial 1; every other call increments.
  EXPECT_EQ(v, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(CuckooMapTest, UpdateExistingOnly) {
  Map map(SmallOpts());
  EXPECT_FALSE(map.Update(10, 1));
  map.Insert(10, 1);
  EXPECT_TRUE(map.Update(10, 2));
  std::uint64_t v = 0;
  map.Find(10, &v);
  EXPECT_EQ(v, 2u);
}

TEST(CuckooMapTest, EraseRemoves) {
  Map map(SmallOpts());
  map.Insert(10, 1);
  map.Insert(20, 2);
  EXPECT_TRUE(map.Erase(10));
  EXPECT_FALSE(map.Contains(10));
  EXPECT_TRUE(map.Contains(20));
  EXPECT_EQ(map.Size(), 1u);
  EXPECT_FALSE(map.Erase(10));
  // Slot is reusable.
  EXPECT_EQ(map.Insert(10, 3), InsertResult::kOk);
}

TEST(CuckooMapTest, ManyKeysRoundTrip) {
  Map map(SmallOpts());
  constexpr std::uint64_t kN = 50000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert(i, i * 7), InsertResult::kOk) << i;
  }
  EXPECT_EQ(map.Size(), kN);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i * 7) << i;
  }
  EXPECT_FALSE(map.Find(kN + 1, &v));
}

TEST(CuckooMapTest, FixedSizeFillsPast90Percent) {
  Map map(SmallOpts(10, /*expand=*/false));
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  EXPECT_GT(map.LoadFactor(), 0.9) << "8-way cuckoo should reach very high occupancy";
  EXPECT_EQ(map.Insert(i, i), InsertResult::kTableFull);
  EXPECT_GT(map.Stats().insert_failures, 0);
  // Everything inserted remains findable at capacity.
  std::uint64_t v;
  for (std::uint64_t k = 0; k < i; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

TEST(CuckooMapTest, ExpansionPreservesContents) {
  Map map(SmallOpts(6, /*expand=*/true));  // 512 slots
  constexpr std::uint64_t kN = 100000;    // forces many doublings
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert(i, ~i), InsertResult::kOk) << i;
  }
  EXPECT_GT(map.Stats().expansions, 5);
  EXPECT_GE(map.SlotCount(), kN);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, ~i);
  }
}

TEST(CuckooMapTest, ReserveAvoidsExpansionDuringFill) {
  Map map(SmallOpts(4, /*expand=*/true));
  map.Reserve(100000);
  map.ResetStats();
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  EXPECT_EQ(map.Stats().expansions, 0);
}

TEST(CuckooMapTest, ClearEmptiesButKeepsCapacity) {
  Map map(SmallOpts());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.Insert(i, i);
  }
  std::size_t slots = map.SlotCount();
  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.SlotCount(), slots);
  EXPECT_FALSE(map.Contains(5));
  EXPECT_EQ(map.Insert(5, 50), InsertResult::kOk);
}

TEST(CuckooMapTest, LockedReadModeBehavesIdentically) {
  Map::Options o = SmallOpts();
  o.read_mode = ReadMode::kLocked;
  Map map(o);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    map.Insert(i, i + 1);
  }
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(map.Find(i, &v));
    ASSERT_EQ(v, i + 1);
  }
  EXPECT_FALSE(map.Find(99999, &v));
}

TEST(CuckooMapTest, DfsSearchModeWorks) {
  Map::Options o = SmallOpts(8, /*expand=*/false);
  o.search_mode = SearchMode::kDfs;
  Map map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  EXPECT_GT(map.LoadFactor(), 0.9);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < i; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

TEST(CuckooMapTest, StatsTrackOperations) {
  Map map(SmallOpts());
  map.Insert(1, 1);
  map.Insert(2, 2);
  map.Insert(1, 9);
  std::uint64_t v;
  map.Find(1, &v);
  map.Find(42, &v);
  map.Erase(2);
  MapStatsSnapshot s = map.Stats();
  EXPECT_EQ(s.inserts, 2);
  EXPECT_EQ(s.duplicate_inserts, 1);
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.lookup_hits, 1);
  EXPECT_EQ(s.erases, 1);
  map.ResetStats();
  EXPECT_EQ(map.Stats().inserts, 0);
}

TEST(CuckooMapTest, PathHistogramRecordsDisplacements) {
  Map map(SmallOpts(8, /*expand=*/false));
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  MapStatsSnapshot s = map.Stats();
  EXPECT_GT(s.displacements, 0);
  EXPECT_GT(s.path_searches, 0);
  EXPECT_LE(s.MaxPathLength(), static_cast<std::int64_t>(map.MaxBfsDepth()));
  EXPECT_GT(s.path_length_hist[0], 0) << "most inserts land without displacement";
}

TEST(CuckooMapTest, HeapBytesTracksCapacity) {
  Map small(SmallOpts(8));
  Map big(SmallOpts(12));
  EXPECT_GT(big.HeapBytes(), small.HeapBytes());
}

TEST(CuckooMapTest, WideValuesRoundTrip) {
  using Wide = std::array<char, 64>;
  CuckooMap<std::uint64_t, Wide>::Options o;
  o.initial_bucket_count_log2 = 8;
  CuckooMap<std::uint64_t, Wide> map(o);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    Wide w{};
    std::snprintf(w.data(), w.size(), "value-%llu", static_cast<unsigned long long>(i));
    ASSERT_EQ(map.Insert(i, w), InsertResult::kOk);
  }
  Wide out{};
  ASSERT_TRUE(map.Find(4321, &out));
  EXPECT_STREQ(out.data(), "value-4321");
}

TEST(CuckooMapTest, FixedWidthStringKeys) {
  struct Key {
    std::array<char, 16> bytes{};
    bool operator==(const Key& other) const { return bytes == other.bytes; }
  };
  struct KeyHash {
    std::uint64_t operator()(const Key& k) const noexcept {
      return XxHash64(k.bytes.data(), k.bytes.size());
    }
  };
  CuckooMap<Key, int, KeyHash>::Options o;
  o.initial_bucket_count_log2 = 8;
  CuckooMap<Key, int, KeyHash> map(o);
  Key a;
  std::snprintf(a.bytes.data(), a.bytes.size(), "alpha");
  Key b;
  std::snprintf(b.bytes.data(), b.bytes.size(), "beta");
  EXPECT_EQ(map.Insert(a, 1), InsertResult::kOk);
  EXPECT_EQ(map.Insert(b, 2), InsertResult::kOk);
  int v = 0;
  ASSERT_TRUE(map.Find(a, &v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(map.Find(b, &v));
  EXPECT_EQ(v, 2);
}

TEST(CuckooMapTest, LockedViewIteratesAllEntries) {
  Map map(SmallOpts());
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    map.Insert(i, i * 2);
  }
  std::set<std::uint64_t> seen;
  {
    auto view = map.Lock();
    for (auto [key, value] : view) {
      EXPECT_EQ(value, key * 2);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate key in iteration";
    }
    EXPECT_EQ(view.Size(), kN);
  }
  EXPECT_EQ(seen.size(), kN);
}

TEST(CuckooMapTest, LockedViewMutation) {
  Map map(SmallOpts());
  map.Insert(1, 10);
  {
    auto view = map.Lock();
    std::uint64_t v = 0;
    EXPECT_TRUE(view.Find(1, &v));
    EXPECT_EQ(v, 10u);
    EXPECT_EQ(view.Insert(2, 20), InsertResult::kOk);
    EXPECT_EQ(view.Insert(1, 99), InsertResult::kKeyExists);
    EXPECT_TRUE(view.Erase(1));
    EXPECT_FALSE(view.Erase(1));
  }
  EXPECT_FALSE(map.Contains(1));
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(2, &v));
  EXPECT_EQ(v, 20u);
}

TEST(CuckooMapTest, LockedViewValuesAreMutable) {
  Map map(SmallOpts());
  map.Insert(7, 0);
  {
    auto view = map.Lock();
    for (auto [key, value] : view) {
      value = key + 100;
    }
  }
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(7, &v));
  EXPECT_EQ(v, 107u);
}

TEST(CuckooMapTest, SmallStripeCountStillCorrect) {
  Map::Options o = SmallOpts();
  o.stripe_count = 2;  // maximal stripe collisions
  Map map(o);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    ASSERT_TRUE(map.Find(i, &v));
  }
}

}  // namespace
}  // namespace cuckoo
