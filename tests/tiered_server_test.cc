// Larger-than-memory tier behind the epoll server: GETs that miss RAM park
// the connection on async disk reads instead of blocking the event loop.
// Covers: correct tiered GET/SET over the wire, loop liveness while a slow
// disk read is in flight, idle-reap immunity for parked connections, and
// graceful shutdown that completes (never tears) an in-flight response.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/store/tiered_store.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using namespace std::chrono_literals;

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_tsrv_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

struct TieredServer {
  TempDir dir;
  store::TieredStore tier;
  std::unique_ptr<KvService> service;
  std::unique_ptr<SocketServer> server;

  // A cold tier (empty hot cache) so every tiered GET goes to disk.
  explicit TieredServer(SocketServer::Options server_opts = {},
                        std::size_t cache_bytes = 1u << 20) {
    store::TieredStoreOptions t;
    t.dir = dir.path;
    t.threshold_bytes = 64;
    t.cache_capacity_bytes = cache_bytes;
    t.reader_threads = 2;
    std::string error;
    EXPECT_TRUE(tier.Open(t, &error)) << error;
    KvService::Options so;
    so.tier = &tier;
    service = std::make_unique<KvService>(so);
    server_opts.enable_tcp = true;
    server = std::make_unique<SocketServer>(service.get(), server_opts);
    EXPECT_TRUE(server->Start());
  }
  ~TieredServer() {
    server->Stop();
    tier.Close();
  }
};

std::string SetCmd(const std::string& key, const std::string& value) {
  return "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value + "\r\n";
}

TEST(TieredServerTest, TieredSetGetOverTheWire) {
  TieredServer ts;
  SocketClient client("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(client.connected());
  const std::string big(5000, 'B');
  EXPECT_EQ(client.RoundTrip(SetCmd("big", big), "\r\n"), "STORED\r\n");
  EXPECT_EQ(client.RoundTrip(SetCmd("small", "sv"), "\r\n"), "STORED\r\n");
  const std::string r = client.RoundTrip("get big small\r\n", "END\r\n");
  EXPECT_NE(r.find("VALUE big 0 5000\r\n" + big), std::string::npos);
  EXPECT_NE(r.find("VALUE small 0 2\r\nsv"), std::string::npos);
  EXPECT_GE(ts.tier.Stats().tiered_sets, 1u);
}

// While one connection is parked on a deliberately slow disk read, other
// connections on the SAME event loop keep being served: the loop never
// blocks on disk.
TEST(TieredServerTest, ParkedReadDoesNotBlockTheLoop) {
  SocketServer::Options so;
  so.event_threads = 1;  // force both connections onto one loop
  // Tiny cache: the value cannot stay hot, so the GET must go to disk.
  TieredServer ts(so, /*cache_bytes=*/1);
  const std::string big(4096, 'P');
  {
    SocketClient w("127.0.0.1", ts.server->tcp_port());
    ASSERT_TRUE(w.connected());
    ASSERT_EQ(w.RoundTrip(SetCmd("parked", big), "\r\n"), "STORED\r\n");
  }
  ts.tier.SetReadDelayForTesting(300);

  SocketClient slow("127.0.0.1", ts.server->tcp_port());
  SocketClient fast("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(slow.connected());
  ASSERT_TRUE(fast.connected());

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(slow.Send("get parked\r\n"));
  // Give the loop a moment to park the slow GET, then serve an inline GET on
  // the other connection — it must complete while the disk read sleeps.
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(fast.RoundTrip(SetCmd("inline", "iv"), "\r\n"), "STORED\r\n");
  EXPECT_EQ(fast.RoundTrip("get inline\r\n", "END\r\n"),
            "VALUE inline 0 2\r\niv\r\nEND\r\n");
  const auto fast_elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(fast_elapsed, 250ms) << "inline request waited on the parked disk read";

  // The parked response still arrives, intact.
  std::string r;
  while (r.find("END\r\n") == std::string::npos) {
    if (slow.Receive(&r) <= 0) {
      break;
    }
  }
  EXPECT_NE(r.find("VALUE parked 0 4096\r\n" + big), std::string::npos);
  ASSERT_GE(ts.server->Stats().parked_reads, 1u);
  EXPECT_EQ(ts.server->Stats().curr_parked, 0u);
}

// A connection parked on a disk read outlives the idle timeout: waiting on
// our own disk is not idleness.
TEST(TieredServerTest, ParkedConnectionImmuneToIdleReaping) {
  SocketServer::Options so;
  so.event_threads = 1;
  so.idle_timeout_ms = 100;
  TieredServer ts(so, /*cache_bytes=*/1);
  const std::string big(4096, 'I');
  {
    SocketClient w("127.0.0.1", ts.server->tcp_port());
    ASSERT_EQ(w.RoundTrip(SetCmd("idlekey", big), "\r\n"), "STORED\r\n");
  }
  // Disk read far slower than the idle timeout.
  ts.tier.SetReadDelayForTesting(400);
  SocketClient client("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("get idlekey\r\n"));
  std::string r;
  while (r.find("END\r\n") == std::string::npos) {
    if (client.Receive(&r) <= 0) {
      break;
    }
  }
  // Reaped mid-read would surface as EOF before END.
  EXPECT_NE(r.find("VALUE idlekey 0 4096\r\n" + big), std::string::npos);
  EXPECT_NE(r.find("END\r\n"), std::string::npos);
}

// Graceful shutdown with a read in flight: the response is either complete
// or absent — never a half-written VALUE block — and Stop() returns.
TEST(TieredServerTest, DrainCompletesInFlightDiskRead) {
  SocketServer::Options so;
  so.event_threads = 1;
  so.drain_timeout_ms = 2000;
  TieredServer ts(so, /*cache_bytes=*/1);
  const std::string big(4096, 'D');
  {
    SocketClient w("127.0.0.1", ts.server->tcp_port());
    ASSERT_EQ(w.RoundTrip(SetCmd("drainkey", big), "\r\n"), "STORED\r\n");
  }
  ts.tier.SetReadDelayForTesting(200);
  SocketClient client("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("get drainkey\r\n"));
  std::this_thread::sleep_for(50ms);  // let the GET park
  ASSERT_GE(ts.server->Stats().curr_parked, 1u);
  ts.server->Stop();  // drain: the parked read must finish and flush first

  std::string r;
  for (;;) {
    long n = client.Receive(&r);
    if (n <= 0) {
      break;  // clean close after the full response
    }
  }
  EXPECT_NE(r.find("VALUE drainkey 0 4096\r\n" + big + "\r\nEND\r\n"), std::string::npos)
      << "drain tore the in-flight response: " << r.substr(0, 120);
}

// Shutdown with a read in flight and a SHORT drain deadline: the socket may
// close without the response, but never with a torn one, and Stop() must not
// hang or crash (use-after-close).
TEST(TieredServerTest, DrainDeadlineForceClosesWithoutTearing) {
  SocketServer::Options so;
  so.event_threads = 1;
  so.drain_timeout_ms = 20;  // far shorter than the disk read
  TieredServer ts(so, /*cache_bytes=*/1);
  const std::string big(4096, 'F');
  {
    SocketClient w("127.0.0.1", ts.server->tcp_port());
    ASSERT_EQ(w.RoundTrip(SetCmd("forcekey", big), "\r\n"), "STORED\r\n");
  }
  ts.tier.SetReadDelayForTesting(500);
  SocketClient client("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("get forcekey\r\n"));
  std::this_thread::sleep_for(50ms);
  ts.server->Stop();  // deadline passes while the read sleeps: force close

  std::string r;
  for (;;) {
    long n = client.Receive(&r);
    if (n <= 0) {
      break;
    }
  }
  // All-or-nothing: either the read won the race and the response is whole,
  // or the connection closed with no VALUE bytes at all.
  if (!r.empty() && r.find("VALUE") != std::string::npos) {
    EXPECT_NE(r.find("END\r\n"), std::string::npos) << "torn response";
  }
  // The completion callback fires after Stop(); give it time to prove it
  // doesn't touch freed state (tsan/asan runs make this meaningful).
  std::this_thread::sleep_for(600ms);
}

// Pipelined GETs needing multiple disk rounds: the connection re-parks and
// every response arrives in order.
TEST(TieredServerTest, PipelinedTieredGetsReparkInOrder) {
  SocketServer::Options so;
  so.event_threads = 1;
  TieredServer ts(so, /*cache_bytes=*/1);
  std::string pipeline;
  for (int i = 0; i < 4; ++i) {
    const std::string key = "pp" + std::to_string(i);
    SocketClient w("127.0.0.1", ts.server->tcp_port());
    ASSERT_EQ(w.RoundTrip(SetCmd(key, std::string(1024, static_cast<char>('a' + i))),
                          "\r\n"),
              "STORED\r\n");
    pipeline += "get " + key + "\r\n";
  }
  ts.tier.SetReadDelayForTesting(20);
  SocketClient client("127.0.0.1", ts.server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(pipeline));
  std::string r;
  std::size_t ends = 0;
  while (ends < 4) {
    if (client.Receive(&r) <= 0) {
      break;
    }
    ends = 0;
    for (std::size_t pos = r.find("END\r\n"); pos != std::string::npos;
         pos = r.find("END\r\n", pos + 5)) {
      ++ends;
    }
  }
  ASSERT_EQ(ends, 4u) << r.substr(0, 200);
  // In-order: pp0's VALUE precedes pp1's, etc.
  std::size_t last = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t pos = r.find("VALUE pp" + std::to_string(i) + " ");
    ASSERT_NE(pos, std::string::npos) << i;
    EXPECT_GE(pos, last);
    last = pos;
  }
  EXPECT_GE(ts.server->Stats().parked_reads, 2u);
}

}  // namespace
}  // namespace cuckoo
