// Seeded replication conformance fuzz: drive a random set/overwrite/delete
// stream (inline and tiered values) into a real primary process while a real
// replica process is killed, restarted, and full-sync'd underneath it, then
// require byte-exact convergence against a std::unordered_map oracle.
//
// The seed comes from REPL_FUZZ_SEED when set (reproduce a failure by
// exporting the seed printed on the failing run), otherwise a fixed default
// keeps CI deterministic.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "tests/process_harness.h"

namespace cuckoo {
namespace {

using testsupport::Client;
using testsupport::ServerProcess;
using testsupport::StatValue;
using testsupport::TempDir;

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("REPL_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC0FFEE;
}

// Values stay alphanumeric so the text-protocol Get parser in the harness
// can never mistake payload bytes for framing.
std::string RandomValue(std::mt19937_64* rng, std::size_t len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(len);
  std::uniform_int_distribution<int> pick(0, sizeof(kAlphabet) - 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[pick(*rng)]);
  }
  return out;
}

bool WaitForKey(const std::string& sock, const std::string& key,
                const std::string& value, int spins = 2000) {
  for (int i = 0; i < spins; ++i) {
    Client probe(sock);
    if (probe.connected() && probe.Get(key) == value) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// Block until the primary reports zero replication lag (the replica applied
// and acknowledged everything written so far).
void WaitForDrain(const std::string& primary_sock) {
  for (int i = 0; i < 3000; ++i) {
    Client probe(primary_sock);
    const std::string stats = probe.Roundtrip("stats\r\n", "END\r\n");
    if (StatValue(stats, "repl_replicas") == 1 && StatValue(stats, "repl_lag_lsn") == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "replica never drained the stream";
}

TEST(ReplConformanceTest, FuzzedStreamConvergesByteExactAcrossRestartsAndFullSync) {
  const std::uint64_t seed = FuzzSeed();
  SCOPED_TRACE("REPL_FUZZ_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);

  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";
  const std::string pwal = dir.path + "/pwal";
  const std::string rwal = dir.path + "/rwal";

  // Small segments so snapshot GC genuinely removes history (forcing the
  // full-sync path), and a low tier threshold so the stream carries both
  // inline kSet frames and rewritten kSetTiered ones.
  ServerProcess primary(pwal, psock, "always",
                        {"--tcp-port=0", "--segment-bytes=8192",
                         "--vlog-dir=" + dir.path + "/pvlog",
                         "--vlog-threshold-bytes=64"});
  const std::string replicaof =
      "--replicaof=127.0.0.1:" + std::to_string(primary.tcp_port());
  auto replica = std::make_unique<ServerProcess>(
      rwal, rsock, "always", std::vector<std::string>{replicaof});

  std::unordered_map<std::string, std::string> oracle;
  Client writer(psock);
  std::uniform_int_distribution<int> key_pick(0, 399);
  std::uniform_int_distribution<int> op_pick(0, 99);
  std::uniform_int_distribution<int> small_len(1, 40);
  std::uniform_int_distribution<int> tiered_len(80, 300);

  constexpr int kOps = 3000;
  constexpr int kPhase = kOps / 3;
  int replica_kills = 0;
  for (int op = 0; op < kOps; ++op) {
    const std::string key = "k" + std::to_string(key_pick(rng));
    const int dice = op_pick(rng);
    if (dice < 15) {
      const std::string resp = writer.Roundtrip("delete " + key + "\r\n", "\r\n");
      const bool existed = oracle.erase(key) > 0;
      ASSERT_EQ(resp, existed ? "DELETED\r\n" : "NOT_FOUND\r\n")
          << "op " << op << " key " << key;
    } else {
      // ~1 in 4 sets crosses the tier threshold and travels the
      // kSetTiered-rewrite path.
      const std::size_t len = (dice < 40)
                                  ? static_cast<std::size_t>(tiered_len(rng))
                                  : static_cast<std::size_t>(small_len(rng));
      const std::string value = RandomValue(&rng, len);
      ASSERT_TRUE(writer.Set(key, value)) << "op " << op << " key " << key;
      oracle[key] = value;
    }

    // Phase boundaries inject replica-lifecycle faults mid-stream.
    if (op == kPhase) {
      // Cycle 1: kill -9 the replica, restart on the same wal dir — it must
      // recover locally and resume the stream from its own position.
      replica->Kill9();
      ++replica_kills;
      replica = std::make_unique<ServerProcess>(rwal, rsock, "always",
                                                std::vector<std::string>{replicaof});
    } else if (op == 2 * kPhase) {
      // Cycle 2, step 1: kill the replica and leave it down while the
      // stream keeps advancing. It is restarted at step 2 below, after the
      // primary has GC'd the WAL range the replica would need to resume.
      replica->Kill9();
      ++replica_kills;
      replica.reset();
    } else if (op == 2 * kPhase + 500) {
      // Cycle 2, step 2: by now ~500 more records rolled several 8 KiB
      // segments past the dead replica's position. Snapshot + GC the sealed
      // segments away, so the reconnect can only succeed via full sync.
      ASSERT_EQ(writer.Roundtrip("bgsave\r\n", "\r\n"), "OK\r\n");
      bool gc_done = false;
      for (int spin = 0; spin < 1000 && !gc_done; ++spin) {
        gc_done = !ListFilesWithPrefix(pwal, "snap-").empty() &&
                  ListFilesWithPrefix(pwal, "wal-").size() == 1;
        if (!gc_done) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      ASSERT_TRUE(gc_done) << "snapshot GC never pruned the sealed WAL segments";
      replica = std::make_unique<ServerProcess>(rwal, rsock, "always",
                                                std::vector<std::string>{replicaof});
    }
  }
  ASSERT_EQ(replica_kills, 2);

  // Convergence: a sentinel write plus a drained stream pins the replica at
  // the primary's head.
  ASSERT_TRUE(writer.Set("sentinel", "done"));
  oracle["sentinel"] = "done";
  WaitForDrain(psock);
  ASSERT_TRUE(WaitForKey(rsock, "sentinel", "done"));

  // Byte-exact equality with the oracle: every live key matches, every
  // deleted key is absent, and the item counts agree (no resurrections).
  Client reader(rsock);
  for (const auto& [key, value] : oracle) {
    ASSERT_EQ(reader.Get(key), value) << "divergence at " << key;
  }
  for (int k = 0; k < 400; ++k) {
    const std::string key = "k" + std::to_string(k);
    if (oracle.find(key) == oracle.end()) {
      ASSERT_EQ(reader.Get(key), "") << "deleted key " << key << " resurrected";
    }
  }
  const std::string rstats = reader.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_EQ(StatValue(rstats, "curr_items"), static_cast<long long>(oracle.size()))
      << rstats;
  EXPECT_GE(StatValue(rstats, "repl_client_full_syncs"), 1) << rstats;

  // And the converged replica survives a promotion: same data, writable.
  EXPECT_EQ(reader.Roundtrip("replicaof none\r\n", "\r\n"), "OK\r\n");
  primary.Terminate();
  Client promoted(rsock);
  for (const auto& [key, value] : oracle) {
    ASSERT_EQ(promoted.Get(key), value) << "post-promotion divergence at " << key;
  }
  ASSERT_TRUE(promoted.Set("written-after-promotion", "v"));
}

}  // namespace
}  // namespace cuckoo
