// API conformance: every map type in the repo must agree on the semantics of
// the shared interface (Insert / duplicate handling / Find / Update / Upsert
// / Erase / Size), verified through one typed suite — plus a deterministic
// randomized fuzz harness replaying seeded op sequences against a
// std::unordered_map oracle (see MapFuzzTest below).
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/chaining_map.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/baselines/global_lock_map.h"
#include "src/common/random.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/common/file_util.h"
#include "src/cuckoo/sharded_map.h"
#include "src/cuckoo/simd_probe.h"
#include "src/kvserver/kv_service.h"
#include "src/store/tiered_store.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

// Uniform construction across heterogeneous constructors.
template <typename MapT>
std::unique_ptr<MapT> MakeMap() {
  return std::make_unique<MapT>();
}

template <>
std::unique_ptr<CuckooMap<K, V>> MakeMap() {
  CuckooMap<K, V>::Options o;
  o.initial_bucket_count_log2 = 10;
  return std::make_unique<CuckooMap<K, V>>(o);
}

template <>
std::unique_ptr<FlatCuckooMap<K, V>> MakeMap() {
  FlatOptions o;
  o.bucket_count_log2 = 13;  // 32K slots: BulkRoundTrip must fit
  o.lock_after_discovery = true;
  o.search_mode = SearchMode::kBfs;
  return std::make_unique<FlatCuckooMap<K, V>>(o);
}

template <>
std::unique_ptr<GeneralCuckooMap<K, V>> MakeMap() {
  GeneralCuckooMap<K, V>::Options o;
  o.initial_bucket_count_log2 = 10;
  return std::make_unique<GeneralCuckooMap<K, V>>(o);
}

template <typename MapT>
class MapConformanceTest : public ::testing::Test {
 protected:
  std::unique_ptr<MapT> map_ = MakeMap<MapT>();
};

using MapTypes = ::testing::Types<
    CuckooMap<K, V>, FlatCuckooMap<K, V>, GeneralCuckooMap<K, V>, ChainingMap<K, V>,
    DenseMap<K, V>, ConcurrentChainingMap<K, V>,
    GlobalLockMap<ChainingMap<K, V>, std::mutex>, GlobalLockMap<DenseMap<K, V>, SpinLock>>;
TYPED_TEST_SUITE(MapConformanceTest, MapTypes);

TYPED_TEST(MapConformanceTest, EmptyMapSemantics) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Size(), 0u);
  V v;
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_FALSE(map.Update(1, 2));
}

TYPED_TEST(MapConformanceTest, InsertIsFirstWriterWins) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Insert(K{10}, V{100}), InsertResult::kOk);
  EXPECT_EQ(map.Insert(K{10}, V{200}), InsertResult::kKeyExists);
  V v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(map.Size(), 1u);
}

TYPED_TEST(MapConformanceTest, UpsertIsLastWriterWins) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Upsert(K{10}, V{1}), InsertResult::kOk);
  EXPECT_EQ(map.Upsert(K{10}, V{2}), InsertResult::kKeyExists);
  V v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(map.Size(), 1u);
}

TYPED_TEST(MapConformanceTest, UpdateOnlyTouchesExisting) {
  auto& map = *this->map_;
  EXPECT_FALSE(map.Update(K{5}, V{1}));
  EXPECT_EQ(map.Size(), 0u);
  map.Insert(K{5}, V{1});
  EXPECT_TRUE(map.Update(K{5}, V{9}));
  V v = 0;
  map.Find(5, &v);
  EXPECT_EQ(v, 9u);
}

TYPED_TEST(MapConformanceTest, EraseThenReinsert) {
  auto& map = *this->map_;
  map.Insert(K{7}, V{70});
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.Contains(7));
  EXPECT_EQ(map.Insert(K{7}, V{71}), InsertResult::kOk);
  V v = 0;
  ASSERT_TRUE(map.Find(7, &v));
  EXPECT_EQ(v, 71u);
}

TYPED_TEST(MapConformanceTest, BulkRoundTrip) {
  auto& map = *this->map_;
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert(K{i}, V{i ^ 0xabcdu}), InsertResult::kOk) << i;
  }
  EXPECT_EQ(map.Size(), kN);
  V v = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i ^ 0xabcdu);
  }
  // Erase every third key, verify the rest untouched.
  for (std::uint64_t i = 0; i < kN; i += 3) {
    ASSERT_TRUE(map.Erase(i));
  }
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Find(i, &v), i % 3 != 0) << i;
  }
}

TYPED_TEST(MapConformanceTest, HeapBytesIsPositiveAndGrows) {
  auto& map = *this->map_;
  std::size_t before = map.HeapBytes();
  EXPECT_GT(before, 0u);
  for (std::uint64_t i = 0; i < 50000; ++i) {
    map.Insert(K{i}, V{i});
  }
  EXPECT_GE(map.HeapBytes(), before);
}

// ---------------------------------------------------------------------------
// Deterministic randomized fuzz: one seeded op-sequence generator replayed
// against each cuckoo map variant and a std::unordered_map oracle. Every op
// outcome (return value, looked-up value, size) must match the oracle; a
// divergence fails with the seed and the minimal failing prefix so the run
// reproduces exactly via CUCKOO_FUZZ_SEED=<seed>.
// ---------------------------------------------------------------------------

enum class FuzzOp : std::uint8_t {
  kInsert,
  kUpsert,
  kUpdate,
  kErase,
  kFind,
  kContains,
  kClear,
  kStats,  // snapshot the stats mid-sequence; checks cross-counter invariants
};

struct FuzzStep {
  FuzzOp op;
  K key = 0;
  V value = 0;
};

// Small keyspace so insert/erase/update constantly collide on live keys.
// Expansion-phase runs widen it so the live set outgrows a tiny initial
// table and forces mid-sequence doublings.
constexpr std::uint64_t kFuzzKeySpace = 1024;

std::vector<FuzzStep> GenerateFuzzOps(std::uint64_t seed, std::size_t count,
                                      std::uint64_t key_space = kFuzzKeySpace) {
  Xorshift128Plus rng(Mix64(seed ^ 0x5eedf00du));
  std::vector<FuzzStep> steps;
  steps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FuzzStep s;
    const std::uint64_t roll = rng.NextBelow(1000);
    if (roll < 300) {
      s.op = FuzzOp::kInsert;
    } else if (roll < 450) {
      s.op = FuzzOp::kUpsert;
    } else if (roll < 550) {
      s.op = FuzzOp::kUpdate;
    } else if (roll < 750) {
      s.op = FuzzOp::kErase;
    } else if (roll < 950) {
      s.op = FuzzOp::kFind;
    } else if (roll < 980) {
      s.op = FuzzOp::kContains;
    } else if (roll < 998) {
      s.op = FuzzOp::kStats;
    } else {
      s.op = FuzzOp::kClear;
    }
    s.key = rng.NextBelow(key_space);
    s.value = rng.Next();
    steps.push_back(s);
  }
  return steps;
}

const char* FuzzOpName(FuzzOp op) {
  switch (op) {
    case FuzzOp::kInsert: return "insert";
    case FuzzOp::kUpsert: return "upsert";
    case FuzzOp::kUpdate: return "update";
    case FuzzOp::kErase: return "erase";
    case FuzzOp::kFind: return "find";
    case FuzzOp::kContains: return "contains";
    case FuzzOp::kClear: return "clear";
    case FuzzOp::kStats: return "stats";
  }
  return "?";
}

constexpr std::size_t kNoDivergence = static_cast<std::size_t>(-1);

// Replay steps[0..n) against a fresh map and oracle. Returns the index of the
// first diverging op (kNoDivergence if none) and a description in *what.
template <typename MapT, typename Factory>
std::size_t ReplayPrefix(const std::vector<FuzzStep>& steps, std::size_t n,
                         std::string* what, const Factory& make) {
  auto map = make();
  std::unordered_map<K, V> oracle;
  auto diverge = [&](std::size_t i, const std::string& msg) {
    *what = std::string(FuzzOpName(steps[i].op)) + " key=" +
            std::to_string(steps[i].key) + ": " + msg;
    return i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const FuzzStep& s = steps[i];
    switch (s.op) {
      case FuzzOp::kInsert: {
        const bool existed = oracle.count(s.key) != 0;
        const InsertResult r = map->Insert(s.key, s.value);
        if (r == InsertResult::kTableFull) {
          return diverge(i, "table full");
        }
        if ((r == InsertResult::kKeyExists) != existed) {
          return diverge(i, existed ? "inserted over live key" : "phantom key blocked insert");
        }
        if (!existed) {
          oracle.emplace(s.key, s.value);
        }
        break;
      }
      case FuzzOp::kUpsert: {
        const bool existed = oracle.count(s.key) != 0;
        const InsertResult r = map->Upsert(s.key, s.value);
        if (r == InsertResult::kTableFull) {
          return diverge(i, "table full");
        }
        if ((r == InsertResult::kKeyExists) != existed) {
          return diverge(i, "upsert existence mismatch");
        }
        oracle[s.key] = s.value;
        break;
      }
      case FuzzOp::kUpdate: {
        const bool existed = oracle.count(s.key) != 0;
        if (map->Update(s.key, s.value) != existed) {
          return diverge(i, "update existence mismatch");
        }
        if (existed) {
          oracle[s.key] = s.value;
        }
        break;
      }
      case FuzzOp::kErase: {
        const bool existed = oracle.count(s.key) != 0;
        if (map->Erase(s.key) != existed) {
          return diverge(i, "erase existence mismatch");
        }
        oracle.erase(s.key);
        break;
      }
      case FuzzOp::kFind: {
        V v = 0;
        const bool found = map->Find(s.key, &v);
        auto it = oracle.find(s.key);
        if (found != (it != oracle.end())) {
          return diverge(i, found ? "found erased key" : "lost live key");
        }
        if (found && v != it->second) {
          return diverge(i, "stale value: got " + std::to_string(v) + " want " +
                                std::to_string(it->second));
        }
        break;
      }
      case FuzzOp::kContains: {
        if (map->Contains(s.key) != (oracle.count(s.key) != 0)) {
          return diverge(i, "contains mismatch");
        }
        break;
      }
      case FuzzOp::kClear: {
        map->Clear();
        oracle.clear();
        if (map->Size() != 0) {
          return diverge(i, "nonzero size after clear");
        }
        break;
      }
      case FuzzOp::kStats: {
        const MapStatsSnapshot st = map->Stats();
        // The Read() consistency contract (stats.h): dependent counters never
        // exceed their base counters in one snapshot.
        if (st.lookup_hits > st.lookups) {
          return diverge(i, "stats: hits > lookups");
        }
        if (st.path_invalidations > st.path_searches) {
          return diverge(i, "stats: invalidations > searches");
        }
        break;
      }
    }
    if (map->Size() != oracle.size()) {
      return diverge(i, "size " + std::to_string(map->Size()) + " want " +
                            std::to_string(oracle.size()));
    }
  }
  // Full sweep: every oracle entry must be present with its exact value.
  for (const auto& [key, value] : oracle) {
    V v = 0;
    if (!map->Find(key, &v) || v != value) {
      *what = "final sweep: key " + std::to_string(key) + " wrong/missing";
      return n == 0 ? 0 : n - 1;
    }
  }
  return kNoDivergence;
}

template <typename MapT, typename Factory>
void RunFuzzWith(std::uint64_t seed, std::size_t op_count, std::uint64_t key_space,
                 const Factory& make) {
  const std::vector<FuzzStep> steps = GenerateFuzzOps(seed, op_count, key_space);
  std::string what;
  const std::size_t bad = ReplayPrefix<MapT>(steps, steps.size(), &what, make);
  if (bad == kNoDivergence) {
    return;
  }
  // Minimize: binary-search the shortest prefix that still diverges (the
  // replay is deterministic, so a failing prefix stays failing).
  std::size_t lo = 0;           // prefix of lo ops passes
  std::size_t hi = bad + 1;     // prefix of hi ops fails
  std::string prefix_what;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::string w;
    if (ReplayPrefix<MapT>(steps, mid, &w, make) != kNoDivergence) {
      hi = mid;
      prefix_what = w;
    } else {
      lo = mid;
    }
  }
  std::string tail;
  const std::size_t first = hi > 16 ? hi - 16 : 0;
  for (std::size_t i = first; i < hi; ++i) {
    tail += "\n  [" + std::to_string(i) + "] " + FuzzOpName(steps[i].op) + " key=" +
            std::to_string(steps[i].key) + " value=" + std::to_string(steps[i].value);
  }
  FAIL() << "fuzz divergence (" << (prefix_what.empty() ? what : prefix_what)
         << ")\n  seed=" << seed << " minimal failing prefix=" << hi << " ops"
         << "\n  reproduce: CUCKOO_FUZZ_SEED=" << seed
         << " ctest -R MapFuzzTest --output-on-failure\n  last ops of the minimal prefix:"
         << tail;
}

template <typename MapT>
void RunFuzz(std::uint64_t seed, std::size_t op_count) {
  RunFuzzWith<MapT>(seed, op_count, kFuzzKeySpace, [] { return MakeMap<MapT>(); });
}

// Seed override for reproducing a printed failure.
std::uint64_t FuzzSeed(std::uint64_t default_seed) {
  const char* env = std::getenv("CUCKOO_FUZZ_SEED");
  if (env == nullptr || *env == '\0') {
    return default_seed;
  }
  return std::strtoull(env, nullptr, 10);
}

template <typename MapT>
class MapFuzzTest : public ::testing::Test {};

template <>
std::unique_ptr<ShardedMap<K, V>> MakeMap() {
  return std::make_unique<ShardedMap<K, V>>();
}

using FuzzMapTypes = ::testing::Types<CuckooMap<K, V>, GeneralCuckooMap<K, V>,
                                      FlatCuckooMap<K, V>, ShardedMap<K, V>>;
TYPED_TEST_SUITE(MapFuzzTest, FuzzMapTypes);

TYPED_TEST(MapFuzzTest, SeededOpSequencesMatchOracle) {
  // >= 100k ops per map type, split across independent seeds so one bad
  // interleaving cannot hide behind an early unrelated divergence.
  for (std::uint64_t round = 0; round < 4; ++round) {
    RunFuzz<TypeParam>(FuzzSeed(0xc0ffee00 + round), 30000);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Forced-expansion fuzz phases: the same oracle harness, but starting from a
// tiny table with a keyspace wide enough that the live set doubles the table
// several times mid-sequence. Expansion is no longer a rare corner — every
// seeded run crosses multiple windows with finds/erases/upserts landing on
// both sides of the rehash (or, for the aligned GeneralCuckooMap config, on
// both cores of an open incremental migration window).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kExpandKeySpace = 16384;

TEST(MapFuzzExpansionTest, GeneralMapIncrementalExpansionMatchesOracle) {
  auto make = [] {
    GeneralCuckooMap<K, V>::Options o;
    o.initial_bucket_count_log2 = 4;  // 64 slots: the fuzz fill doubles it ~8x
    o.stripe_count = 8;               // 16 % 8 == 0: every expansion is online
    return std::make_unique<GeneralCuckooMap<K, V>>(o);
  };
  for (std::uint64_t round = 0; round < 2; ++round) {
    RunFuzzWith<GeneralCuckooMap<K, V>>(FuzzSeed(0xe49a4d00 + round), 30000,
                                        kExpandKeySpace, make);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(MapFuzzExpansionTest, GeneralMapStopTheWorldExpansionMatchesOracle) {
  auto make = [] {
    GeneralCuckooMap<K, V>::Options o;
    o.initial_bucket_count_log2 = 4;
    o.incremental_expand = false;  // pin the stop-the-world path
    return std::make_unique<GeneralCuckooMap<K, V>>(o);
  };
  RunFuzzWith<GeneralCuckooMap<K, V>>(FuzzSeed(0xe49a4dff), 30000, kExpandKeySpace, make);
}

// ---------------------------------------------------------------------------
// Dispatch-level conformance: the same seeded oracle fuzz, forced to each
// probe kernel the host supports (scalar / SSE2 / AVX2). Identical seeds per
// level, so any kernel whose candidate masks diverge from the scalar path —
// a missed slot, a phantom match from a zeroed filler lane, a swapped
// dual-bucket half — shows up as an oracle divergence with the usual minimal
// repro. Unsupported levels are skipped, not failed (CI also pins
// CUCKOO_FORCE_PROBE=scalar on one matrix leg so the fallback runs the whole
// suite, not just this fuzz).
// ---------------------------------------------------------------------------

class MapFuzzProbeLevelTest : public ::testing::TestWithParam<simd::ProbeLevel> {
 protected:
  void SetUp() override {
    if (!simd::ProbeLevelSupported(GetParam())) {
      GTEST_SKIP() << simd::ProbeLevelName(GetParam()) << " not supported on this host";
    }
    prev_ = simd::SetProbeLevelForTesting(GetParam());
  }
  void TearDown() override { simd::SetProbeLevelForTesting(prev_); }

 private:
  simd::ProbeLevel prev_ = simd::ProbeLevel::kScalar;
};

TEST_P(MapFuzzProbeLevelTest, SeededOpSequencesMatchOracle) {
  const std::uint64_t seed = FuzzSeed(0x51bd0000);  // same ops at every level
  RunFuzz<CuckooMap<K, V>>(seed, 20000);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  RunFuzz<FlatCuckooMap<K, V>>(seed, 20000);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  RunFuzz<GeneralCuckooMap<K, V>>(seed, 20000);
}

TEST_P(MapFuzzProbeLevelTest, ExpansionPhasesMatchOracle) {
  auto make = [] {
    CuckooMap<K, V>::Options o;
    o.initial_bucket_count_log2 = 4;
    return std::make_unique<CuckooMap<K, V>>(o);
  };
  RunFuzzWith<CuckooMap<K, V>>(FuzzSeed(0x51bd1000), 20000, kExpandKeySpace, make);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, MapFuzzProbeLevelTest,
                         ::testing::Values(simd::ProbeLevel::kScalar,
                                           simd::ProbeLevel::kSse2,
                                           simd::ProbeLevel::kAvx2),
                         [](const ::testing::TestParamInfo<simd::ProbeLevel>& param) {
                           return std::string(simd::ProbeLevelName(param.param));
                         });

TEST(MapFuzzExpansionTest, CuckooMapExpansionMatchesOracle) {
  auto make = [] {
    CuckooMap<K, V>::Options o;
    o.initial_bucket_count_log2 = 4;
    return std::make_unique<CuckooMap<K, V>>(o);
  };
  RunFuzzWith<CuckooMap<K, V>>(FuzzSeed(0xe49a4e01), 30000, kExpandKeySpace, make);
}

// ---------------------------------------------------------------------------
// Tiered-store oracle fuzz: the same seeded-replay idea, one level up. A
// KvService backed by a TieredStore (tiny tiering threshold, tiny hot cache)
// is driven through the text protocol against a std::unordered_map oracle.
// Values straddle the threshold, so every sequence interleaves inline RAM
// entries with value-log location records; the cache is small enough that
// GETs constantly fall through to cold disk reads (exercised through BOTH the
// synchronous path and the parked StartFetches/FinishDeferred path), and GC
// compactions run mid-sequence through the service's real relocation hook.
// The oracle never knows which tier served a byte — it must not matter.
// ---------------------------------------------------------------------------

struct TieredFuzzHarness {
  std::string dir;
  store::TieredStore tier;
  std::unique_ptr<KvService> service;
  KvService::Connection conn;

  TieredFuzzHarness()
      : dir(MakeTempDir()), service(nullptr), conn(nullptr) {
    store::TieredStoreOptions t;
    t.dir = dir;
    t.threshold_bytes = 32;          // most "large" fuzz values tier out
    t.segment_bytes = 16384;         // several segments => GC has targets
    t.cache_capacity_bytes = 2048;   // a handful of hot values, heavy churn
    t.reader_threads = 2;
    std::string error;
    EXPECT_TRUE(tier.Open(t, &error)) << error;
    KvService::Options so;
    so.tier = &tier;
    service = std::make_unique<KvService>(so);
    conn = service->Connect();
    tier.SetGcHooks(
        [this](const std::string& key, const store::ValueLocation& old_loc,
               std::string_view data) {
          return service->RelocateTiered(key, old_loc, data);
        },
        [this] { return tier.SyncLog(); });
  }
  ~TieredFuzzHarness() {
    service.reset();
    tier.Close();
    for (const std::string& name : ListFilesWithPrefix(dir, "")) {
      RemoveFile(dir + "/" + name);
    }
    ::rmdir(dir.c_str());
  }

  static std::string MakeTempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_tierfuzz_XXXXXX";
    const char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    return tmpl;
  }

  // Drive one command through the async-aware path: parked GETs resolve via
  // StartFetches + FinishDeferred exactly as the socket server does.
  std::string Roundtrip(const std::string& command) {
    std::string out;
    std::shared_ptr<KvService::DeferredGet> deferred;
    KvService::Connection::DriveStatus st = conn.Drive(command, &out, &deferred);
    while (st == KvService::Connection::DriveStatus::kSuspended) {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      service->StartFetches(deferred, [&] {
        std::lock_guard<std::mutex> lk(mu);
        done = true;
        cv.notify_one();
      });
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return done; });
      }
      service->FinishDeferred(*deferred, &out);
      deferred.reset();
      st = conn.Drive("", &out, &deferred);
    }
    EXPECT_FALSE(conn.Broken());
    return out;
  }
};

struct TieredOracleEntry {
  std::string value;
  std::uint32_t flags = 0;
};

std::string TieredFuzzValue(Xorshift128Plus& rng, bool large) {
  const std::size_t size = large ? 64 + rng.NextBelow(512) : rng.NextBelow(32);
  std::string v(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    // Printable, CRLF-free payload bytes so the text protocol stays framed.
    v[i] = static_cast<char>('!' + rng.NextBelow(94));
  }
  return v;
}

void RunTieredKvFuzz(std::uint64_t seed, std::size_t op_count) {
  TieredFuzzHarness h;
  std::unordered_map<std::string, TieredOracleEntry> oracle;
  Xorshift128Plus rng(Mix64(seed ^ 0x71e2edull));
  constexpr std::uint64_t kKeySpace = 64;

  for (std::size_t i = 0; i < op_count; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBelow(kKeySpace));
    const std::uint64_t roll = rng.NextBelow(1000);
    if (roll < 400) {  // set: half inline, half tiered
      TieredOracleEntry e;
      e.flags = static_cast<std::uint32_t>(rng.NextBelow(1000));
      e.value = TieredFuzzValue(rng, rng.NextBelow(2) == 0);
      const std::string r = h.Roundtrip("set " + key + " " + std::to_string(e.flags) +
                                        " 0 " + std::to_string(e.value.size()) + "\r\n" +
                                        e.value + "\r\n");
      ASSERT_EQ(r, "STORED\r\n") << "seed=" << seed << " op=" << i;
      oracle[key] = std::move(e);
    } else if (roll < 500) {  // delete
      const bool existed = oracle.count(key) != 0;
      const std::string r = h.Roundtrip("delete " + key + "\r\n");
      ASSERT_EQ(r, existed ? "DELETED\r\n" : "NOT_FOUND\r\n")
          << "seed=" << seed << " op=" << i << " key=" << key;
      oracle.erase(key);
    } else if (roll < 980) {  // get: must match the oracle byte-for-byte
      const std::string r = h.Roundtrip("get " + key + "\r\n");
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        ASSERT_EQ(r, "END\r\n") << "seed=" << seed << " op=" << i << " phantom " << key;
      } else {
        const std::string want = "VALUE " + key + " " + std::to_string(it->second.flags) +
                                 " " + std::to_string(it->second.value.size()) + "\r\n" +
                                 it->second.value + "\r\nEND\r\n";
        ASSERT_EQ(r, want) << "seed=" << seed << " op=" << i << " key=" << key
                           << " (tiered bytes diverged from oracle)";
      }
    } else {  // compact: relocations must be invisible to every later GET
      h.tier.RunGcOnce(/*trigger_override=*/0.3);
    }
  }

  // Final sweep: every oracle entry readable with exact bytes, then a GC
  // storm followed by a re-sweep — compaction must never lose or tear.
  for (int storm = 0; h.tier.RunGcOnce(0.05) && storm < 64; ++storm) {
  }
  for (const auto& [key, entry] : oracle) {
    const std::string r = h.Roundtrip("get " + key + "\r\n");
    ASSERT_NE(r.find("VALUE " + key + " "), std::string::npos)
        << "seed=" << seed << " lost " << key << " after GC storm";
    ASSERT_NE(r.find(entry.value), std::string::npos)
        << "seed=" << seed << " torn value for " << key;
  }
  const store::TieredStoreStats stats = h.tier.Stats();
  EXPECT_GT(stats.tiered_sets, 0u) << "fuzz never exercised the tiered path";
  EXPECT_GT(stats.disk_reads, 0u) << "fuzz never went to disk";
}

TEST(TieredKvFuzzTest, SeededOpSequencesMatchOracle) {
  for (std::uint64_t round = 0; round < 2; ++round) {
    RunTieredKvFuzz(FuzzSeed(0x71e2ed00 + round), 4000);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace cuckoo
