// API conformance: every map type in the repo must agree on the semantics of
// the shared interface (Insert / duplicate handling / Find / Update / Upsert
// / Erase / Size), verified through one typed suite.
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/baselines/chaining_map.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/baselines/global_lock_map.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/general_cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

// Uniform construction across heterogeneous constructors.
template <typename MapT>
std::unique_ptr<MapT> MakeMap() {
  return std::make_unique<MapT>();
}

template <>
std::unique_ptr<CuckooMap<K, V>> MakeMap() {
  CuckooMap<K, V>::Options o;
  o.initial_bucket_count_log2 = 10;
  return std::make_unique<CuckooMap<K, V>>(o);
}

template <>
std::unique_ptr<FlatCuckooMap<K, V>> MakeMap() {
  FlatOptions o;
  o.bucket_count_log2 = 13;  // 32K slots: BulkRoundTrip must fit
  o.lock_after_discovery = true;
  o.search_mode = SearchMode::kBfs;
  return std::make_unique<FlatCuckooMap<K, V>>(o);
}

template <>
std::unique_ptr<GeneralCuckooMap<K, V>> MakeMap() {
  GeneralCuckooMap<K, V>::Options o;
  o.initial_bucket_count_log2 = 10;
  return std::make_unique<GeneralCuckooMap<K, V>>(o);
}

template <typename MapT>
class MapConformanceTest : public ::testing::Test {
 protected:
  std::unique_ptr<MapT> map_ = MakeMap<MapT>();
};

using MapTypes = ::testing::Types<
    CuckooMap<K, V>, FlatCuckooMap<K, V>, GeneralCuckooMap<K, V>, ChainingMap<K, V>,
    DenseMap<K, V>, ConcurrentChainingMap<K, V>,
    GlobalLockMap<ChainingMap<K, V>, std::mutex>, GlobalLockMap<DenseMap<K, V>, SpinLock>>;
TYPED_TEST_SUITE(MapConformanceTest, MapTypes);

TYPED_TEST(MapConformanceTest, EmptyMapSemantics) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Size(), 0u);
  V v;
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_FALSE(map.Update(1, 2));
}

TYPED_TEST(MapConformanceTest, InsertIsFirstWriterWins) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Insert(K{10}, V{100}), InsertResult::kOk);
  EXPECT_EQ(map.Insert(K{10}, V{200}), InsertResult::kKeyExists);
  V v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(map.Size(), 1u);
}

TYPED_TEST(MapConformanceTest, UpsertIsLastWriterWins) {
  auto& map = *this->map_;
  EXPECT_EQ(map.Upsert(K{10}, V{1}), InsertResult::kOk);
  EXPECT_EQ(map.Upsert(K{10}, V{2}), InsertResult::kKeyExists);
  V v = 0;
  ASSERT_TRUE(map.Find(10, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(map.Size(), 1u);
}

TYPED_TEST(MapConformanceTest, UpdateOnlyTouchesExisting) {
  auto& map = *this->map_;
  EXPECT_FALSE(map.Update(K{5}, V{1}));
  EXPECT_EQ(map.Size(), 0u);
  map.Insert(K{5}, V{1});
  EXPECT_TRUE(map.Update(K{5}, V{9}));
  V v = 0;
  map.Find(5, &v);
  EXPECT_EQ(v, 9u);
}

TYPED_TEST(MapConformanceTest, EraseThenReinsert) {
  auto& map = *this->map_;
  map.Insert(K{7}, V{70});
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.Contains(7));
  EXPECT_EQ(map.Insert(K{7}, V{71}), InsertResult::kOk);
  V v = 0;
  ASSERT_TRUE(map.Find(7, &v));
  EXPECT_EQ(v, 71u);
}

TYPED_TEST(MapConformanceTest, BulkRoundTrip) {
  auto& map = *this->map_;
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert(K{i}, V{i ^ 0xabcdu}), InsertResult::kOk) << i;
  }
  EXPECT_EQ(map.Size(), kN);
  V v = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i ^ 0xabcdu);
  }
  // Erase every third key, verify the rest untouched.
  for (std::uint64_t i = 0; i < kN; i += 3) {
    ASSERT_TRUE(map.Erase(i));
  }
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Find(i, &v), i % 3 != 0) << i;
  }
}

TYPED_TEST(MapConformanceTest, HeapBytesIsPositiveAndGrows) {
  auto& map = *this->map_;
  std::size_t before = map.HeapBytes();
  EXPECT_GT(before, 0u);
  for (std::uint64_t i = 0; i < 50000; ++i) {
    map.Insert(K{i}, V{i});
  }
  EXPECT_GE(map.HeapBytes(), before);
}

}  // namespace
}  // namespace cuckoo
