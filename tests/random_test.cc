#include "src/common/random.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(XorshiftTest, DeterministicForSameSeed) {
  Xorshift128Plus a(42);
  Xorshift128Plus b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(XorshiftTest, DifferentSeedsDiverge) {
  Xorshift128Plus a(1);
  Xorshift128Plus b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(XorshiftTest, NextBelowRespectsBound) {
  Xorshift128Plus rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(XorshiftTest, NextBelowOneAlwaysZero) {
  Xorshift128Plus rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(XorshiftTest, NextDoubleInUnitInterval) {
  Xorshift128Plus rng(9);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(XorshiftTest, RoughlyUniformOverBuckets) {
  Xorshift128Plus rng(11);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], kDraws / kBuckets * 9 / 10) << b;
    EXPECT_LT(counts[b], kDraws / kBuckets * 11 / 10) << b;
  }
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, HighThetaSkewsTowardSmallIds) {
  ZipfGenerator zipf(100000, 0.99, 5);
  int head = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 100) {
      ++head;
    }
  }
  // Under uniform draws the first 100 ids get ~0.1% of hits; Zipf(0.99)
  // concentrates tens of percent there.
  EXPECT_GT(head, kDraws / 10);
}

TEST(ZipfTest, ZeroThetaIsRoughlyUniform) {
  ZipfGenerator zipf(1000, 0.0, 5);
  int head = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 100) {
      ++head;
    }
  }
  // First 10% of ids should get ~10% of draws.
  EXPECT_GT(head, kDraws / 20);
  EXPECT_LT(head, kDraws / 5);
}

TEST(ZipfTest, DeterministicForSameSeed) {
  ZipfGenerator a(5000, 0.9, 123);
  ZipfGenerator b(5000, 0.9, 123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfTest, LargeKeySpaceConstructionIsFast) {
  // Exercises the Euler-Maclaurin tail approximation (n > 1e6).
  ZipfGenerator zipf(1ull << 32, 0.9, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(), 1ull << 32);
  }
}

}  // namespace
}  // namespace cuckoo
