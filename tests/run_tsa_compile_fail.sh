#!/usr/bin/env bash
# Compile-fail smoke test for the -Wthread-safety lint leg (ctest label:
# static, via tests/CMakeLists.txt).
#
# Proves the thread-safety annotations are actually load-bearing: a seeded
# missing-unlock (tests/analysis_fixtures/tsa_unlock_compile_fail.cc) must be
# REJECTED by `clang++ -Wthread-safety -Werror`, and the same file with the
# bug fixed (-DFIXTURE_FIXED) must compile cleanly — so a pass can't come
# from a broken include path or a frontend that silently ignores the
# annotations.
#
# Thread Safety Analysis is clang-only; exits 77 (ctest SKIP_RETURN_CODE)
# when no capable clang++ is available, e.g. in the g++-only container.
set -euo pipefail
cd "$(dirname "$0")/.."

FIXTURE=tests/analysis_fixtures/tsa_unlock_compile_fail.cc
CLANGXX=${CLANGXX:-clang++}

if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "SKIP: $CLANGXX not found (-Wthread-safety needs the clang frontend)" >&2
  exit 77
fi

FLAGS=(-std=c++20 -I. -fsyntax-only -Wthread-safety -Werror)

# Probe that this clang accepts the flag at all before trusting a rejection.
if ! echo 'int main() { return 0; }' | "$CLANGXX" "${FLAGS[@]}" -x c++ - 2>/dev/null; then
  echo "SKIP: $CLANGXX does not accept -Wthread-safety" >&2
  exit 77
fi

# 1. The fixed variant must compile: toolchain and include paths are sound.
if ! "$CLANGXX" "${FLAGS[@]}" -DFIXTURE_FIXED "$FIXTURE"; then
  echo "FAIL: fixed variant of $FIXTURE did not compile" >&2
  exit 1
fi

# 2. The seeded variant must be rejected, and for the right reason.
if out=$("$CLANGXX" "${FLAGS[@]}" "$FIXTURE" 2>&1); then
  echo "FAIL: -Wthread-safety did not reject the missing unlock in $FIXTURE" >&2
  exit 1
fi
if ! grep -q "still held" <<<"$out"; then
  echo "FAIL: rejection was not the expected 'mutex still held' diagnostic:" >&2
  echo "$out" >&2
  exit 1
fi

echo "OK: -Wthread-safety rejected the seeded missing unlock"
