// Crash-injection tests: run the real cuckoo_kv_server binary as a child
// process, load it over its unix socket, kill -9 it mid-load, restart it on
// the same WAL directory, and verify every acknowledged write survived.
//
// Note what kill -9 does and does not prove: the OS page cache survives
// SIGKILL, so these tests validate the recovery pipeline (segment/record
// framing, torn tails, snapshot + replay, LSN continuity) rather than the
// physical fsync barrier itself. The fsync_policy=always path is still
// exercised end-to-end because every ack waits on a covering fsync.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "tests/process_harness.h"

namespace cuckoo {
namespace {

using testsupport::Client;
using testsupport::HttpGet;
using testsupport::ServerProcess;
using testsupport::StatValue;
using testsupport::TempDir;

std::string ValueFor(int i) { return "value-" + std::to_string(i) + "-payload"; }

TEST(CrashRecoveryTest, Kill9MidLoadLosesNoAckedWriteUnderFsyncAlways) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";

  std::atomic<int> last_acked{-1};
  {
    ServerProcess server(wal_dir, sock, "always");
    // A loader thread streams acked sets; the main thread pulls the trigger
    // mid-load, so the kill lands while writes are genuinely in flight.
    std::thread loader([&] {
      Client client(sock);
      for (int i = 0; i < 100000; ++i) {
        if (!client.Set("key" + std::to_string(i), ValueFor(i))) {
          return;  // EOF/EPIPE: the server died; i was NOT acked
        }
        last_acked.store(i, std::memory_order_release);
      }
    });
    while (last_acked.load(std::memory_order_acquire) < 200) {
      std::this_thread::yield();  // let a real prefix get acked first
    }
    server.Kill9();
    loader.join();
  }
  const int acked = last_acked.load(std::memory_order_acquire);
  ASSERT_GE(acked, 200);

  ServerProcess server(wal_dir, sock, "always");
  Client client(sock);
  for (int i = 0; i <= acked; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), ValueFor(i))
        << "acked key" << i << " lost after kill -9 (last_acked=" << acked << ")";
  }
}

TEST(CrashRecoveryTest, Kill9AfterBgsaveRecoversFromSnapshotPlusWal) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";

  {
    ServerProcess server(wal_dir, sock, "always");
    Client client(sock);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), ValueFor(i)));
    }
    ASSERT_EQ(client.Roundtrip("bgsave\r\n", "\r\n"), "OK\r\n");
    // Poll stats until the snapshot lands on disk.
    for (int spin = 0; spin < 500 && ListFilesWithPrefix(wal_dir, "snap-").empty();
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_FALSE(ListFilesWithPrefix(wal_dir, "snap-").empty());
    // Keep writing past the snapshot: these live only in the WAL.
    for (int i = 300; i < 400; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), ValueFor(i)));
    }
    for (int i = 0; i < 50; ++i) {  // and overwrite some snapshotted keys
      ASSERT_TRUE(client.Set("key" + std::to_string(i), "overwritten" + std::to_string(i)));
    }
    server.Kill9();
  }

  ServerProcess server(wal_dir, sock, "always");
  Client client(sock);
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_NE(stats.find("STAT recovery_loaded_snapshot 1\r\n"), std::string::npos)
      << stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), "overwritten" + std::to_string(i));
  }
  for (int i = 50; i < 400; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), ValueFor(i));
  }
}

TEST(CrashRecoveryTest, SigtermFlushesEverySecPolicyBeforeExit) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";

  constexpr int kKeys = 500;
  {
    ServerProcess server(wal_dir, sock, "everysec");
    Client client(sock);
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), ValueFor(i)));
    }
    // Under everysec the tail of these writes is typically NOT yet fsynced;
    // graceful shutdown must flush it before exiting.
    server.Terminate();
  }

  ServerProcess server(wal_dir, sock, "everysec");
  Client client(sock);
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), ValueFor(i))
        << "key" << i << " lost across a clean SIGTERM shutdown";
  }
}

TEST(CrashRecoveryTest, StatsDetailAndMetricsEndpointSurviveKill9) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";

  {
    ServerProcess server(wal_dir, sock, "always",
                         {"--metrics-port=0", "--slowlog-threshold-us=0"});
    ASSERT_GT(server.metrics_port(), 0);
    Client client(sock);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), ValueFor(i)));
    }
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(client.Get("key" + std::to_string(i)), ValueFor(i));
    }

    // `stats detail` layers latency percentiles and durability histograms on
    // top of the base stats (which must still be present).
    const std::string detail = client.Roundtrip("stats detail\r\n", "END\r\n");
    EXPECT_GT(StatValue(detail, "curr_items"), 0) << detail;
    EXPECT_EQ(StatValue(detail, "cmd_get_ns_count"), 200) << detail;
    EXPECT_EQ(StatValue(detail, "cmd_set_ns_count"), 200) << detail;
    EXPECT_GT(StatValue(detail, "cmd_get_ns_p50"), 0) << detail;
    EXPECT_GE(StatValue(detail, "cmd_get_ns_p999"), StatValue(detail, "cmd_get_ns_p50"));
    EXPECT_GT(StatValue(detail, "cmd_set_ns_p99"), 0) << detail;
    EXPECT_EQ(StatValue(detail, "wal_append_durable_count"), 200) << detail;
    EXPECT_GT(StatValue(detail, "wal_append_durable_ns_p50"), 0) << detail;
    EXPECT_GE(StatValue(detail, "wal_batch_records_p50"), 1) << detail;
    // Plain `stats` must NOT grow the detail lines (back-compat).
    const std::string plain = client.Roundtrip("stats\r\n", "END\r\n");
    EXPECT_EQ(plain.find("cmd_get_ns_p50"), std::string::npos) << plain;

    // The Prometheus endpoint serves both service and durability families.
    const std::string page = HttpGet(server.metrics_port(), "/metrics");
    EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos) << page;
    EXPECT_NE(page.find("cuckoo_kv_sets_total 200\n"), std::string::npos) << page;
    EXPECT_NE(page.find("cuckoo_kv_get_hits_total 200\n"), std::string::npos) << page;
    EXPECT_NE(page.find("cuckoo_cmd_get_seconds{quantile=\"0.99\"}"), std::string::npos);
    EXPECT_NE(page.find("cuckoo_wal_records_appended_total 200\n"), std::string::npos);
    EXPECT_NE(page.find("cuckoo_wal_append_durable_seconds_count 200\n"),
              std::string::npos);
    EXPECT_NE(page.find("cuckoo_table_lookups_total"), std::string::npos);

    server.Kill9();
  }

  // After a crash + recovery the observability surface must come back too,
  // with fresh histograms and recovery counters.
  ServerProcess server(wal_dir, sock, "always", {"--metrics-port=0"});
  ASSERT_GT(server.metrics_port(), 0);
  Client client(sock);
  ASSERT_EQ(client.Get("key7"), ValueFor(7));
  const std::string detail = client.Roundtrip("stats detail\r\n", "END\r\n");
  EXPECT_EQ(StatValue(detail, "recovery_wal_records_applied"), 200) << detail;
  EXPECT_GT(StatValue(detail, "cmd_get_ns_p50"), 0) << detail;
  const std::string page = HttpGet(server.metrics_port(), "/metrics");
  EXPECT_NE(page.find("cuckoo_wal_durable_lsn"), std::string::npos) << page;
  EXPECT_NE(page.find("cuckoo_kv_items 200\n"), std::string::npos) << page;
}

TEST(CrashRecoveryTest, SlowlogCapturesSlowCommandsOverTheWire) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";

  // Threshold 0us is "disabled"; use 1us so real fsync-backed sets (tens of
  // microseconds at least) always qualify.
  ServerProcess server(wal_dir, sock, "always",
                       {"--slowlog-threshold-us=1", "--slowlog-capacity=16"});
  Client client(sock);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.Set("slowkey" + std::to_string(i), ValueFor(i)));
  }
  const std::string slowlog = client.Roundtrip("stats slowlog\r\n", "END\r\n");
  EXPECT_EQ(StatValue(slowlog, "slowlog_threshold_ns"), 1000) << slowlog;
  EXPECT_GE(StatValue(slowlog, "slowlog_total"), 8) << slowlog;
  EXPECT_NE(slowlog.find(" set slowkey7\r\n"), std::string::npos) << slowlog;
  // Unknown stats sub-commands are rejected, not silently treated as plain.
  const std::string bad = client.Roundtrip("stats bogus\r\n", "\r\n");
  EXPECT_EQ(bad.rfind("ERROR", 0), 0u) << bad;
  server.Terminate();
}

// ---- Larger-than-memory tier (value log) crash tests ------------------------

// A tiered value: padded past the vlog threshold, version-stamped so torn or
// stale recoveries are detectable.
std::string TieredValueFor(int i, int version = 0) {
  std::string v = "tiered-" + std::to_string(i) + "-v" + std::to_string(version) + "-";
  v.resize(200, 'x');
  return v;
}

std::vector<std::string> TierArgs(const std::string& vlog_dir) {
  return {"--vlog-dir=" + vlog_dir, "--vlog-threshold-bytes=64"};
}

TEST(CrashRecoveryTest, TieredKill9MidLoadLosesNoAckedWriteUnderFsyncAlways) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  const std::string vlog_dir = dir.path + "/vlog";

  std::atomic<int> last_acked{-1};
  {
    ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
    std::thread loader([&] {
      Client client(sock);
      for (int i = 0; i < 100000; ++i) {
        if (!client.Set("key" + std::to_string(i), TieredValueFor(i))) {
          return;  // server died; i was NOT acked
        }
        last_acked.store(i, std::memory_order_release);
      }
    });
    while (last_acked.load(std::memory_order_acquire) < 100) {
      std::this_thread::yield();
    }
    server.Kill9();  // mid-append: the vlog tail may carry a torn frame
    loader.join();
  }
  const int acked = last_acked.load(std::memory_order_acquire);
  ASSERT_GE(acked, 100);

  ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
  Client client(sock);
  for (int i = 0; i <= acked; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), TieredValueFor(i))
        << "acked tiered key" << i << " lost after kill -9 (last_acked=" << acked << ")";
  }
  // Those GETs ran against a cold hot-cache: the index held only location
  // records and the bytes came back through the value log's parked-read path.
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_GT(StatValue(stats, "vlog_disk_reads"), 0) << stats;
  EXPECT_GT(StatValue(stats, "server_parked_reads"), 0) << stats;
}

TEST(CrashRecoveryTest, TieredKill9MidGcLosesNoAckedState) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  const std::string vlog_dir = dir.path + "/vlog";

  // Tiny segments + a low trigger: steady overwrites keep the compactor busy
  // so SIGKILL lands while GC is actually relocating records.
  std::vector<std::string> args = TierArgs(vlog_dir);
  args.push_back("--vlog-segment-bytes=8192");
  args.push_back("--vlog-gc-trigger=0.2");

  constexpr int kKeys = 32;
  std::vector<std::atomic<int>> acked_version(kKeys);
  for (auto& v : acked_version) {
    v.store(-1);
  }
  {
    ServerProcess server(wal_dir, sock, "always", args);
    std::atomic<bool> stop{false};
    std::thread loader([&] {
      Client client(sock);
      for (int n = 0; !stop.load(std::memory_order_acquire); ++n) {
        const int key = n % kKeys;
        const int version = n / kKeys;
        if (!client.Set("key" + std::to_string(key), TieredValueFor(key, version))) {
          return;
        }
        acked_version[key].store(version, std::memory_order_release);
      }
    });
    // Wait until at least one segment was actually compacted (GC provably in
    // flight), then crash. Bounded wait so a broken GC fails loudly.
    Client probe(sock);
    long long retired = 0;
    for (int spin = 0; spin < 2000 && retired <= 0; ++spin) {
      const std::string stats = probe.Roundtrip("stats\r\n", "END\r\n");
      retired = StatValue(stats, "vlog_gc_segments_retired");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(retired, 0) << "GC never retired a segment; trigger too high?";
    server.Kill9();
    stop.store(true, std::memory_order_release);
    loader.join();
  }

  ServerProcess server(wal_dir, sock, "always", args);
  Client client(sock);
  for (int key = 0; key < kKeys; ++key) {
    const int acked = acked_version[key].load(std::memory_order_acquire);
    if (acked < 0) {
      continue;
    }
    const std::string got = client.Get("key" + std::to_string(key));
    ASSERT_FALSE(got.empty()) << "tiered key" << key << " vanished across GC + kill -9";
    // The recovered version must be at least the last acked one (a later
    // applied-but-unacked overwrite may legitimately win), and the payload
    // must be whole — GC must never tear or resurrect.
    const std::string prefix = "tiered-" + std::to_string(key) + "-v";
    ASSERT_EQ(got.rfind(prefix, 0), 0u) << got.substr(0, 40);
    const int version = std::atoi(got.c_str() + prefix.size());
    EXPECT_GE(version, acked) << "key" << key << " rolled back past an acked write";
    EXPECT_EQ(got, TieredValueFor(key, version));
  }
}

TEST(CrashRecoveryTest, TornVlogTailTruncatedOnRestart) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  const std::string vlog_dir = dir.path + "/vlog";

  constexpr int kKeys = 20;
  {
    ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
    Client client(sock);
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), TieredValueFor(i)));
    }
    server.Kill9();
  }
  // Simulate a crash mid-append: garbage bytes on the active segment's tail.
  std::string newest;
  for (const std::string& name : ListFilesWithPrefix(vlog_dir, "vlog-")) {
    if (name > newest) {
      newest = name;
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::FILE* f = std::fopen((vlog_dir + "/" + newest).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string garbage(137, '\x5a');
    ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f), garbage.size());
    std::fclose(f);
  }

  ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
  Client client(sock);
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_GT(StatValue(stats, "vlog_torn_tail_bytes"), 0) << stats;
  // Every acked value survives the truncation, and the log accepts new
  // appends after the repaired tail.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), TieredValueFor(i));
  }
  ASSERT_TRUE(client.Set("fresh", TieredValueFor(999)));
  EXPECT_EQ(client.Get("fresh"), TieredValueFor(999));
}

TEST(CrashRecoveryTest, TieredSigtermFlushesEverySecBeforeExit) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  const std::string vlog_dir = dir.path + "/vlog";

  constexpr int kKeys = 200;
  {
    ServerProcess server(wal_dir, sock, "everysec", TierArgs(vlog_dir));
    Client client(sock);
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), TieredValueFor(i)));
    }
    // Under everysec the vlog tail is typically NOT yet fsynced; graceful
    // shutdown must sync the value log before the WAL.
    server.Terminate();
  }
  ServerProcess server(wal_dir, sock, "everysec", TierArgs(vlog_dir));
  Client client(sock);
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), TieredValueFor(i))
        << "tiered key" << i << " lost across a clean SIGTERM shutdown";
  }
}

TEST(CrashRecoveryTest, TieredSnapshotHoldsLocationsNotBytes) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  const std::string vlog_dir = dir.path + "/vlog";

  {
    ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
    Client client(sock);
    // ~200 KiB of tiered values; the snapshot should stay far smaller.
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(client.Set("key" + std::to_string(i), TieredValueFor(i)));
    }
    ASSERT_EQ(client.Roundtrip("bgsave\r\n", "\r\n"), "OK\r\n");
    for (int spin = 0; spin < 500 && ListFilesWithPrefix(wal_dir, "snap-").empty();
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const std::vector<std::string> snaps = ListFilesWithPrefix(wal_dir, "snap-");
    ASSERT_FALSE(snaps.empty());
    std::string bytes;
    ASSERT_TRUE(ReadFileToString(wal_dir + "/" + snaps.back(), &bytes));
    // 1000 entries x (~60 bytes of header + key + 16-byte location) stays
    // well under the 200 KB of value data it indexes; storing the bytes
    // inline would push it past that.
    EXPECT_LT(bytes.size(), 120u * 1000u) << bytes.size();
    server.Kill9();
  }

  ServerProcess server(wal_dir, sock, "always", TierArgs(vlog_dir));
  Client client(sock);
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_EQ(StatValue(stats, "recovery_loaded_snapshot"), 1) << stats;
  for (int i = 0; i < 1000; i += 37) {
    ASSERT_EQ(client.Get("key" + std::to_string(i)), TieredValueFor(i));
  }
}

TEST(CrashRecoveryTest, RestartExposesDurabilityStats) {
  TempDir dir;
  const std::string sock = dir.path + "/srv.sock";
  const std::string wal_dir = dir.path + "/wal";
  {
    ServerProcess server(wal_dir, sock, "always");
    Client client(sock);
    ASSERT_TRUE(client.Set("k", "v"));
    const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
    EXPECT_NE(stats.find("STAT wal_records_appended 1\r\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("STAT wal_durable_lsn 1\r\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("STAT fsync_policy always\r\n"), std::string::npos) << stats;
    server.Terminate();
  }
  ServerProcess server(wal_dir, sock, "always");
  Client client(sock);
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_NE(stats.find("STAT recovery_wal_records_applied 1\r\n"), std::string::npos)
      << stats;
  EXPECT_EQ(client.Get("k"), "v");
}

}  // namespace
}  // namespace cuckoo
