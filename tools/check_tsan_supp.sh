#!/usr/bin/env bash
# Guard against stale ThreadSanitizer suppressions in tools/tsan.supp.
#
# Policy (stated in tsan.supp itself): the file stays empty, because the
# seqlock layer expresses its intentional races through relaxed atomic
# accessors instead of suppressions. This guard enforces the weaker invariant
# that survives policy exceptions: IF an entry exists, its pattern must still
# match something real — a symbol in the built binaries or a tracked source
# path. A suppression that matches nothing is dead weight that silently keeps
# masking reports if the symbol ever comes back under the same name.
#
#   tools/check_tsan_supp.sh [build-dir]   # default: build-tsan
#
# Exit 0: no suppressions, or every suppression matches. Exit 1: at least one
# stale entry. Exit 2: suppressions exist but there is nothing to check them
# against (no build tree).
set -euo pipefail
cd "$(dirname "$0")/.."

SUPP=tools/tsan.supp
BUILD_DIR=${1:-build-tsan}

# Suppression syntax: `type:pattern` with `*` wildcards; comments start with #.
mapfile -t entries < <(grep -vE '^[[:space:]]*(#|$)' "$SUPP" || true)

if [[ ${#entries[@]} -eq 0 ]]; then
  echo "tsan.supp OK: no suppressions (policy: keep it that way)"
  exit 0
fi

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: tsan.supp has ${#entries[@]} entries but '$BUILD_DIR' does not" >&2
  echo "exist to validate them against; build the tsan preset first" >&2
  exit 2
fi

# One haystack: demangled symbols from every archive/executable in the build
# tree, plus tracked source paths (suppressions may name files, not symbols).
haystack=$(mktemp)
trap 'rm -f "$haystack"' EXIT
while IFS= read -r -d '' bin; do
  nm -C "$bin" 2>/dev/null || true
done < <(find "$BUILD_DIR" -type f \( -name '*.a' -o -name '*.so' -o -perm -u+x \) -print0) \
  >>"$haystack"
git ls-files 'src/*' 'tests/*' >>"$haystack"

fail=0
for entry in "${entries[@]}"; do
  pattern=${entry#*:}
  # Suppression wildcards to regex: escape metacharacters, then `*` -> `.*`.
  regex=$(printf '%s' "$pattern" | sed -e 's/[.[\^$+?(){}|]/\\&/g' -e 's/\*/.*/g')
  if ! grep -qE -- "$regex" "$haystack"; then
    echo "STALE: suppression '$entry' matches no symbol or source path" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "tsan.supp guard FAILED: remove the stale entries (or fix their patterns)" >&2
  exit 1
fi
echo "tsan.supp OK: all ${#entries[@]} suppressions still match build symbols"
