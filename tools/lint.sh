#!/usr/bin/env bash
# Static analysis over src/ (and the headers it exports).
#
#   tools/lint.sh            # lint everything
#   tools/lint.sh src/...    # lint specific files
#
# Two engines, in preference order:
#
#   1. clang-tidy, driven by the compile database of a dedicated build tree
#      (build-lint/). Check selection lives in .clang-tidy; WarningsAsErrors
#      makes any finding fatal, so CI can gate on the exit code.
#   2. A g++ fallback when clang-tidy is not installed: every header is
#      compiled standalone (-fsyntax-only) under -Wall -Wextra -Wshadow
#      -Werror, in both the default and the CUCKOO_DEBUG_CHECKS/
#      CUCKOO_ENABLE_TEST_POINTS configurations. This verifies headers are
#      self-contained and warning-free even where the debug-only code is
#      normally compiled out.
#
# Exit code 0 means clean.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-lint

configure_lint_tree() {
  cmake -B "$BUILD_DIR" -G Ninja \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCUCKOO_BUILD_BENCH=OFF \
        -DCUCKOO_BUILD_EXAMPLES=OFF \
        -DCUCKOO_DEBUG_CHECKS=ON \
        -DCUCKOO_ENABLE_TEST_POINTS=ON >/dev/null
}

if command -v clang-tidy >/dev/null 2>&1; then
  configure_lint_tree
  # Lint every TU that is part of the core or exercises its headers; the
  # header-filter in .clang-tidy scopes reported findings to src/.
  mapfile -t sources < <(git ls-files 'src/*.cc' 'src/**/*.cc' 'tests/*.cc')
  echo "clang-tidy over ${#sources[@]} translation units..."
  clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}"
  echo "lint OK (clang-tidy)"
  exit 0
fi

echo "clang-tidy not found; falling back to strict g++ header/TU checks" >&2
CXX=${CXX:-g++}
mapfile -t headers < <(git ls-files 'src/*.h' 'src/**/*.h')
mapfile -t sources < <(git ls-files 'src/*.cc' 'src/**/*.cc')

# Restrict to requested files when arguments are given.
if [[ $# -gt 0 ]]; then
  headers=()
  sources=()
  for f in "$@"; do
    case "$f" in
      *.h) headers+=("$f") ;;
      *.cc) sources+=("$f") ;;
    esac
  done
fi

FLAGS=(-std=c++20 -I. -Wall -Wextra -Wshadow -Werror -fsyntax-only)
DEBUG_DEFS=(-DCUCKOO_DEBUG_CHECKS=1 -DCUCKOO_ENABLE_TEST_POINTS=1)

fail=0
for h in "${headers[@]}"; do
  for variant in default debug; do
    defs=()
    [[ "$variant" == debug ]] && defs=("${DEBUG_DEFS[@]}")
    if ! "$CXX" "${FLAGS[@]}" "${defs[@]}" -x c++ "$h"; then
      echo "FAIL ($variant): $h" >&2
      fail=1
    fi
  done
done
for s in "${sources[@]}"; do
  if ! "$CXX" "${FLAGS[@]}" "$s"; then
    echo "FAIL: $s" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "lint FAILED" >&2
  exit 1
fi
echo "lint OK (g++ fallback: ${#headers[@]} headers x 2 configs, ${#sources[@]} TUs)"
