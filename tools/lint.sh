#!/usr/bin/env bash
# Static analysis over src/ (and the headers it exports), tests/, and bench/.
#
#   tools/lint.sh            # lint everything
#   tools/lint.sh src/...    # lint specific files (g++/clang legs only)
#
# Legs, in order:
#
#   1. clang-tidy (>= $MIN_TIDY_MAJOR), driven by the compile database of a
#      dedicated build tree (build-lint/). Profiles are per-directory:
#      .clang-tidy at the root is the strict src/ profile; tests/.clang-tidy
#      and bench/.clang-tidy relax the families that are noise in test and
#      benchmark code. WarningsAsErrors makes any finding fatal.
#      Falls back to leg 2 when clang-tidy is not installed; HARD-FAILS when
#      an installed clang-tidy is older than the pin (an old parser silently
#      skips checks this config relies on — that is not a usable lint).
#   2. g++ fallback: every header is compiled standalone (-fsyntax-only)
#      under -Wall -Wextra -Wshadow -Werror in three configurations —
#      default, CUCKOO_DEBUG_CHECKS/CUCKOO_ENABLE_TEST_POINTS, and the
#      CUCKOO_SANITIZE=thread config (CUCKOO_TSAN=1 + -fsanitize=thread), so
#      the seqlock layer's TSan-only accessor branch (atomic_util.h) is
#      compile-checked even on machines that never build the tsan preset.
#   3. clang++ -Wthread-safety -Werror over every header and TU, when a
#      clang++ is available. This is the compile-time concurrency-contract
#      leg (see docs/memory_model.md, "Compile-time contracts"); Thread
#      Safety Analysis is clang-only, so the leg is skipped (with a notice)
#      under a g++-only toolchain — CI always runs it.
#   4. tools/analysis/check_seqlock.py: the custom seqlock/atomic-discipline
#      checker (raw bucket access, memory-order allowlist, seqlock windows),
#      preceded by its fixture self-test so a silently-broken checker cannot
#      report a clean tree.
#
# Exit code 0 means every leg that ran is clean.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-lint
MIN_TIDY_MAJOR=14
PYTHON=${PYTHON:-python3}
CLANGXX=${CLANGXX:-clang++}

mapfile -t headers < <(git ls-files 'src/*.h' 'src/**/*.h')
mapfile -t sources < <(git ls-files 'src/*.cc' 'src/**/*.cc')

# Restrict the per-file legs to requested files when arguments are given.
if [[ $# -gt 0 ]]; then
  headers=()
  sources=()
  for f in "$@"; do
    case "$f" in
      *.h) headers+=("$f") ;;
      *.cc) sources+=("$f") ;;
    esac
  done
fi

run_clang_tidy() {
  local version_line major
  version_line=$(clang-tidy --version 2>/dev/null | grep -oE 'version [0-9]+' | head -1)
  major=${version_line#version }
  if [[ -z "$major" || "$major" -lt "$MIN_TIDY_MAJOR" ]]; then
    echo "error: clang-tidy >= ${MIN_TIDY_MAJOR} required, found ${major:-unknown}." >&2
    echo "  Older releases lack checks this profile pins (bugprone-*/concurrency-*" >&2
    echo "  additions) and mis-parse the C++20 sources, producing a lint pass that" >&2
    echo "  verified nothing. Install clang-tidy-${MIN_TIDY_MAJOR}+ or put it first in PATH." >&2
    exit 2
  fi
  # Bench stays ON here (unlike normal builds) so bench TUs land in the
  # compile database and get linted under bench/.clang-tidy.
  cmake -B "$BUILD_DIR" -G Ninja \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCUCKOO_BUILD_BENCH=ON \
        -DCUCKOO_BUILD_EXAMPLES=OFF \
        -DCUCKOO_DEBUG_CHECKS=ON \
        -DCUCKOO_ENABLE_TEST_POINTS=ON >/dev/null
  # Every TU in the repo; per-directory .clang-tidy files pick the profile
  # (root = strict src/ profile, tests/ and bench/ = relaxed). The fixtures
  # under tests/analysis_fixtures/ are not TUs and are not matched here.
  local -a tus
  mapfile -t tus < <(git ls-files 'src/*.cc' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc')
  echo "clang-tidy $major over ${#tus[@]} translation units..."
  clang-tidy -p "$BUILD_DIR" --quiet "${tus[@]}"
  echo "lint OK (clang-tidy)"
}

run_gxx_fallback() {
  echo "clang-tidy not found; falling back to strict g++ header/TU checks" >&2
  local cxx=${CXX:-g++}
  local -a flags=(-std=c++20 -I. -Wall -Wextra -Wshadow -Werror -fsyntax-only)
  local -a debug_defs=(-DCUCKOO_DEBUG_CHECKS=1 -DCUCKOO_ENABLE_TEST_POINTS=1)
  # Mirrors the CUCKOO_SANITIZE=thread cmake config: the define is what the
  # build sets, the flag is what makes gcc define __SANITIZE_THREAD__.
  local -a tsan_defs=(-DCUCKOO_TSAN=1 -fsanitize=thread)
  local fail=0
  for h in "${headers[@]}"; do
    for variant in default debug tsan; do
      local -a defs=()
      [[ "$variant" == debug ]] && defs=("${debug_defs[@]}")
      [[ "$variant" == tsan ]] && defs=("${tsan_defs[@]}")
      if ! "$cxx" "${flags[@]}" "${defs[@]}" -x c++ "$h"; then
        echo "FAIL ($variant): $h" >&2
        fail=1
      fi
    done
  done
  for s in "${sources[@]}"; do
    if ! "$cxx" "${flags[@]}" "$s"; then
      echo "FAIL: $s" >&2
      fail=1
    fi
  done
  if [[ $fail -ne 0 ]]; then
    echo "lint FAILED (g++ fallback)" >&2
    exit 1
  fi
  echo "lint OK (g++ fallback: ${#headers[@]} headers x 3 configs, ${#sources[@]} TUs)"
}

run_thread_safety() {
  if ! command -v "$CLANGXX" >/dev/null 2>&1; then
    echo "note: $CLANGXX not found; skipping -Wthread-safety leg (clang-only)." >&2
    echo "      The annotations compile to nothing under g++ and are verified in CI." >&2
    return 0
  fi
  local -a flags=(-std=c++20 -I. -fsyntax-only -Wthread-safety -Werror)
  if ! echo 'int main() { return 0; }' | "$CLANGXX" "${flags[@]}" -x c++ - 2>/dev/null; then
    echo "note: $CLANGXX does not accept -Wthread-safety; skipping leg." >&2
    return 0
  fi
  echo "clang++ -Wthread-safety over ${#headers[@]} headers + ${#sources[@]} TUs..."
  local fail=0
  for h in "${headers[@]}"; do
    if ! "$CLANGXX" "${flags[@]}" -x c++ "$h"; then
      echo "FAIL (thread-safety): $h" >&2
      fail=1
    fi
  done
  for s in "${sources[@]}"; do
    if ! "$CLANGXX" "${flags[@]}" "$s"; then
      echo "FAIL (thread-safety): $s" >&2
      fail=1
    fi
  done
  if [[ $fail -ne 0 ]]; then
    echo "thread-safety lint FAILED" >&2
    exit 1
  fi
  echo "thread-safety OK"
}

run_seqlock_checker() {
  if ! command -v "$PYTHON" >/dev/null 2>&1; then
    echo "note: $PYTHON not found; skipping check_seqlock.py (runs in CI)." >&2
    return 0
  fi
  echo "check_seqlock.py fixture self-test + src/ scan..."
  "$PYTHON" tools/analysis/check_seqlock.py --fixtures tests/analysis_fixtures >/dev/null
  "$PYTHON" tools/analysis/check_seqlock.py
}

if command -v clang-tidy >/dev/null 2>&1; then
  run_clang_tidy
else
  run_gxx_fallback
fi
run_thread_safety
run_seqlock_checker
echo "all lint legs OK"
