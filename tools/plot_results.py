#!/usr/bin/env python3
"""ASCII bar charts from the bench binaries' --csv output.

Stdlib-only, so it works on any box the benches run on:

    ./build/bench/fig01_overview --csv | tools/plot_results.py --label table --value mops
    ./build/bench/fig09_setassoc_load --csv | \
        tools/plot_results.py --label occupancy --value mops --group associativity

Reads CSV from stdin (header row required), prints one bar per row, grouped
under headings when --group is given.
"""
import argparse
import csv
import sys

BAR_WIDTH = 50


def render(rows, label_col, value_col, group_col):
    try:
        values = [float(row[value_col]) for row in rows]
    except (KeyError, ValueError) as err:
        sys.exit(f"bad --value column {value_col!r}: {err}")
    peak = max(values) if values else 1.0
    if peak <= 0:
        peak = 1.0

    label_width = max(len(row.get(label_col, "")) for row in rows) if rows else 0
    current_group = None
    for row, value in zip(rows, values):
        if group_col:
            group = row.get(group_col, "")
            if group != current_group:
                current_group = group
                print(f"\n== {group_col} = {group} ==")
        bar = "#" * max(1, round(value / peak * BAR_WIDTH))
        print(f"  {row.get(label_col, ''):>{label_width}}  {bar} {value:g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--label", required=True, help="column used as the bar label")
    parser.add_argument("--value", required=True, help="numeric column to plot")
    parser.add_argument("--group", default=None,
                        help="optional column; a heading is printed when it changes")
    args = parser.parse_args()

    reader = csv.DictReader(sys.stdin)
    if reader.fieldnames is None:
        sys.exit("no CSV header on stdin (did you pass --csv to the bench binary?)")
    for col in filter(None, [args.label, args.value, args.group]):
        if col not in reader.fieldnames:
            sys.exit(f"column {col!r} not in header {reader.fieldnames}")
    render(list(reader), args.label, args.value, args.group)


if __name__ == "__main__":
    main()
