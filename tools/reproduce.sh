#!/usr/bin/env bash
# One-shot reproduction driver: build, test, run every figure bench, and
# capture the outputs next to DESIGN.md / EXPERIMENTS.md.
#
#   tools/reproduce.sh              # default (minutes-scale) sizes
#   tools/reproduce.sh --paper      # paper-scale tables (2^27 slots; needs ~3 GB
#                                   # of RAM per table and much more time)
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA_FLAGS=()
if [[ "${1:-}" == "--paper" ]]; then
  EXTRA_FLAGS+=(--slots_log2=27)
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    case "$b" in *.cmake|*CMakeFiles*) continue ;; esac
    [[ -x "$b" && -f "$b" ]] || continue
    "$b" "${EXTRA_FLAGS[@]}"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
