#!/usr/bin/env bash
# One-shot reproduction driver: build, test, run every figure bench, and
# capture the outputs next to DESIGN.md / EXPERIMENTS.md.
#
#   tools/reproduce.sh              # default (minutes-scale) sizes
#   tools/reproduce.sh --paper      # paper-scale tables (2^27 slots; needs ~3 GB
#                                   # of RAM per table and much more time)
#
# Uses the `release` CMake preset (see CMakePresets.json), so the build tree
# is build-release/. The sanitizer matrix has its own presets:
#   cmake --preset tsan && cmake --build --preset tsan && \
#     ctest --preset tsan -L concurrency
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA_FLAGS=()
if [[ "${1:-}" == "--paper" ]]; then
  EXTRA_FLAGS+=(--slots_log2=27)
fi

BUILD_DIR=build-release

# Refuse a stale build tree whose configuration is incompatible with the
# release preset (wrong generator, or sanitizer flags baked in): incremental
# reconfiguration of either silently produces wrong-flavor binaries.
if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cached_generator=$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$BUILD_DIR/CMakeCache.txt")
  cached_sanitize=$(sed -n 's/^CUCKOO_SANITIZE:STRING=//p' "$BUILD_DIR/CMakeCache.txt")
  if [[ "$cached_generator" != "Ninja" || ( -n "$cached_sanitize" && "$cached_sanitize" != "off" ) ]]; then
    echo "error: $BUILD_DIR was configured with generator='$cached_generator'," >&2
    echo "       CUCKOO_SANITIZE='${cached_sanitize:-<unset>}' — incompatible with" >&2
    echo "       the release preset. Remove it and re-run:  rm -rf $BUILD_DIR" >&2
    exit 1
  fi
fi

cmake --preset release
cmake --build --preset release -j "$(nproc)"

ctest --preset release -j "$(nproc)" 2>&1 | tee test_output.txt

{
  for b in "$BUILD_DIR"/bench/*; do
    case "$b" in *.cmake|*CMakeFiles*) continue ;; esac
    [[ -x "$b" && -f "$b" ]] || continue
    "$b" "${EXTRA_FLAGS[@]}"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
