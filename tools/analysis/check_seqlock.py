#!/usr/bin/env python3
"""Static checker for the seqlock / atomic-access discipline of this repo.

The Clang Thread Safety Analysis (tools/lint.sh, -Wthread-safety) covers the
lock-shaped contracts: which mutex guards which field, which functions require
which capability. What it cannot see is the *seqlock* side of the memory model
(docs/memory_model.md): optimistic readers copy bucket words WITHOUT any lock
and validate a version counter afterwards. This checker enforces the four
rules that protocol depends on:

  raw-bucket-access
      Every load/store of seqlock-protected bucket storage (the `keys[]` /
      `values[]` arrays of TableCore) must go through the accessors defined in
      src/cuckoo/table_core.h (RelaxedLoad/RelaxedStore wrappers or the
      exclusive *Ref accessors). A `.keys[i]` / `->values[j]` member access
      anywhere else is a torn-read hazard the type system cannot catch,
      because the arrays are plain (deliberately: the atomics live in
      atomic_util.h so the struct layout stays two cache lines).

  memory-order
      Every explicit std::memory_order_* (or __ATOMIC_*) argument must come
      from the per-file allowlist in memory_order_allowlist.json. New code
      that needs a stronger (or weaker!) order must update the allowlist in
      the same change, making the ordering inventory in docs/memory_model.md
      reviewable instead of drifting silently.

  raw-vector-load
      Vector load intrinsics (_mm_load*/_mm256_load*/...) read 4-16 bytes in
      one instruction with no way to annotate the race for TSan, so they may
      only appear inside src/cuckoo/simd_probe.h — and even there only on
      private TagGroup copies, never on the live tag array. Everywhere else,
      code that wants a whole-bucket tag snapshot must call the sanctioned
      LoadTagsVector() accessor, which produces the copy with the right
      tear-tolerance story (element-wise relaxed under TSan, memcpy
      otherwise) before any vector instruction touches it.

  seqlock-window
      Between a version read (`.AwaitVersion(`) and its validating re-read
      (`.LoadRaw(`) a reader must not block or allocate: taking any lock can
      deadlock against the writer that will bump the version, and an
      allocation both can block and makes the (bounded) retry loop unbounded
      in the worst case. A window that never re-validates before the function
      ends is also reported.

Engine: a libclang tokenizer is used for comment/string stripping when the
clang Python bindings are importable (``--engine libclang``); otherwise a
built-in lexer handles //, /* */ comments, and string/char literals. The rule
logic itself is line/regex based either way, which is exactly as precise as
the coding style in this repo needs (one statement per line, no macros that
synthesize member accesses).

Usage:
  check_seqlock.py [paths...]             # check (default: src/)
  check_seqlock.py --fixtures DIR         # self-test against seeded fixtures
  check_seqlock.py --json out.json ...    # also write findings as JSON

Exit status: 0 = clean / all fixture expectations matched, 1 = findings (or
fixture mismatch), 2 = usage or I/O error.
"""

import argparse
import json
import os
import re
import sys

RULE_RAW = "raw-bucket-access"
RULE_ORDER = "memory-order"
RULE_VECTOR = "raw-vector-load"
RULE_WINDOW = "seqlock-window"
ALL_RULES = (RULE_RAW, RULE_ORDER, RULE_VECTOR, RULE_WINDOW)

# Functions in table_core.h that are allowed to touch keys[]/values[] raw:
# the tear-tolerant accessors plus the exclusive-access references. Everything
# else — including new TableCore methods — must go through these.
RAW_ACCESS_ALLOWED_FILE = "table_core.h"
RAW_ACCESS_ALLOWED_FUNCS = frozenset(
    {
        "KeyRef",
        "ValueRef",
        "MutableValueRef",
        "LoadKey",
        "LoadValue",
        "WriteSlot",
        "WriteValue",
        "MoveSlot",
        # Prefetch hints: they form addresses into keys[]/values[] but never
        # dereference — __builtin_prefetch takes the pointer, reads nothing.
        "PrefetchBucket",
        "PrefetchCandidate",
    }
)

RAW_ACCESS_RE = re.compile(r"(?:\.|->)\s*(keys|values)\s*\[")

# Vector load intrinsics: the `load` prefix also covers loadu/loadl/loadh/
# load_si128 etc.; lddqu / maskload / stream_load are the non-`load`-prefixed
# pointer-reading forms.
VECTOR_LOAD_ALLOWED_FILE = "simd_probe.h"
VECTOR_LOAD_RE = re.compile(
    r"\b(_mm(?:256|512)?_(?:maskz?_)?(?:load|lddqu|maskload|stream_load)\w*)\s*\("
)

MEMORY_ORDER_RE = re.compile(r"std::memory_order_([a-z_]+)|__ATOMIC_([A-Z_]+)")

WINDOW_OPEN_RE = re.compile(r"(?:\.|->)\s*AwaitVersion\s*\(")
WINDOW_CLOSE_RE = re.compile(r"(?:\.|->)\s*LoadRaw\s*\(")

# Tokens that must not appear inside an open seqlock window. Each entry is
# (compiled regex, human-readable reason).
WINDOW_FORBIDDEN = [
    (re.compile(r"\bnew\b"), "allocation (operator new)"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "allocation (malloc family)"),
    (re.compile(r"\b(?:push_back|emplace_back|emplace|resize|reserve|insert)\s*\("),
     "container growth (may allocate)"),
    (re.compile(r"\bstd::string\s*\("), "std::string construction (may allocate)"),
    (re.compile(r"(?:\.|->)\s*(?:Lock|lock|LockShared|try_lock|TryLock)\s*\("),
     "lock acquisition"),
    (re.compile(r"\b(?:MutexLock|ScopedLock|PairGuard|AllGuard)\b"),
     "lock guard construction"),
    (re.compile(r"\b(?:LockPair|LockStripe|LockAll|TryLockStripe)\s*\("),
     "stripe lock acquisition"),
    (re.compile(r"(?:\.|->)\s*wait(?:_for|_until)?\s*\("), "condition-variable wait"),
    (re.compile(r"\b(?:sleep|usleep|nanosleep|sleep_for|sleep_until)\b"),
     "sleep"),
]

CONTROL_KEYWORDS = frozenset(
    {"if", "for", "while", "switch", "catch", "do", "else", "return", "co_return"}
)
SCOPE_KEYWORDS = frozenset({"namespace", "struct", "class", "enum", "union", "extern"})

IDENT_RE = re.compile(r"[A-Za-z_~][A-Za-z0-9_]*")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def as_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Comment / string stripping
# --------------------------------------------------------------------------


def strip_comments_regex(text):
    """Replace comments and string/char literal contents with spaces.

    Newlines are preserved (including inside block comments) so line numbers
    survive. Handles \\-escapes inside literals; raw strings are not used in
    this codebase and are treated as plain literals.
    """
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                out.append(quote)
            elif c == "\n":  # unterminated; recover
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def strip_comments_libclang(path, text):
    """Same contract as strip_comments_regex, via the clang lexer."""
    import clang.cindex as ci  # noqa: deferred import; may be absent

    index = ci.Index.create()
    tu = index.parse(
        path,
        args=["-std=c++20", "-x", "c++"],
        unsaved_files=[(path, text)],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
    )
    # Start from an all-blank canvas of identical shape, then paint back
    # every non-comment token at its exact offset.
    canvas = [c if c == "\n" else " " for c in text]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind == ci.TokenKind.COMMENT:
            continue
        spelling = tok.spelling
        start = tok.extent.start.offset
        if tok.kind == ci.TokenKind.LITERAL and (
            spelling.startswith('"') or spelling.startswith("'")
        ):
            spelling = spelling[0] + " " * max(0, len(spelling) - 2) + spelling[0]
        for j, ch in enumerate(spelling):
            if start + j < len(canvas) and ch != "\n":
                canvas[start + j] = ch
    return "".join(canvas)


def make_stripper(engine):
    if engine == "regex":
        return lambda path, text: strip_comments_regex(text)
    if engine == "libclang":
        import clang.cindex  # noqa: raises if unavailable

        return strip_comments_libclang
    # auto
    try:
        import clang.cindex  # noqa

        return strip_comments_libclang
    except Exception:
        return lambda path, text: strip_comments_regex(text)


# --------------------------------------------------------------------------
# Function tracking
# --------------------------------------------------------------------------


def annotate_functions(stripped):
    """Return a list: for each line (0-based), the innermost function name
    containing that line, or None at file/class scope.

    Heuristic brace tracker, sufficient for this repo's one-statement-per-line
    style: accumulates signature text between statement boundaries and, on
    every '{', decides whether it opens a function body, a control block, or
    a named scope.
    """
    per_line = []
    stack = []  # list of function-name-or-None, one per open brace
    pending = []
    line_no = 0
    current = None

    def innermost():
        for name in reversed(stack):
            if name is not None:
                return name
        return None

    i = 0
    n = len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            per_line.append(innermost())
            line_no += 1
        elif c == "{":
            sig = "".join(pending).strip()
            pending = []
            name = classify_block(sig)
            stack.append(name)
        elif c == "}":
            if stack:
                stack.pop()
            pending = []
        elif c == ";":
            pending = []
        else:
            pending.append(c)
        i += 1
    if not stripped.endswith("\n"):
        per_line.append(innermost())
    return per_line


def classify_block(sig):
    """Name of the function a '{' opens, or None for control/scope blocks."""
    if not sig:
        return None
    tokens = IDENT_RE.findall(sig)
    if not tokens:
        return None
    first = tokens[0]
    if first in CONTROL_KEYWORDS:
        return None
    if first in SCOPE_KEYWORDS:
        return None
    if sig.rstrip().endswith(("=", ",")):
        return None  # initializer list / aggregate
    paren = sig.find("(")
    if paren < 0:
        return None
    before = IDENT_RE.findall(sig[:paren])
    if not before:
        return None
    name = before[-1]
    if name in CONTROL_KEYWORDS or name in SCOPE_KEYWORDS:
        return None
    return name


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


def check_raw_access(rel_path, lines, funcs, findings):
    in_allowed_file = os.path.basename(rel_path) == RAW_ACCESS_ALLOWED_FILE
    for idx, line in enumerate(lines):
        m = RAW_ACCESS_RE.search(line)
        if not m:
            continue
        func = funcs[idx] if idx < len(funcs) else None
        if in_allowed_file and func in RAW_ACCESS_ALLOWED_FUNCS:
            continue
        where = f"in {func}()" if func else "at file scope"
        findings.append(
            Finding(
                RULE_RAW,
                rel_path,
                idx + 1,
                f"raw access to seqlock-protected bucket array `{m.group(1)}` "
                f"{where}; use the table_core.h accessors "
                "(LoadKey/LoadValue/WriteSlot/KeyRef/...)",
            )
        )


def check_vector_load(rel_path, lines, funcs, findings):
    if os.path.basename(rel_path) == VECTOR_LOAD_ALLOWED_FILE:
        return
    for idx, line in enumerate(lines):
        m = VECTOR_LOAD_RE.search(line)
        if not m:
            continue
        func = funcs[idx] if idx < len(funcs) else None
        where = f"in {func}()" if func else "at file scope"
        findings.append(
            Finding(
                RULE_VECTOR,
                rel_path,
                idx + 1,
                f"vector load intrinsic `{m.group(1)}` {where}; raw vector "
                "loads of shared memory cannot be race-annotated — take a "
                "TagGroup snapshot via the LoadTagsVector() accessor and "
                "run the simd_probe.h kernels on the private copy",
            )
        )


def check_memory_order(rel_path, lines, allowlist, findings):
    allowed = allowlist.get("files", {}).get(rel_path)
    if allowed is None:
        allowed = allowlist.get("default", [])
    allowed = {a.lower() for a in allowed}
    for idx, line in enumerate(lines):
        for m in MEMORY_ORDER_RE.finditer(line):
            order = (m.group(1) or m.group(2) or "").lower()
            # __ATOMIC_RELAXED -> relaxed
            if order.startswith("__atomic_"):
                order = order[len("__atomic_"):]
            if order not in allowed:
                findings.append(
                    Finding(
                        RULE_ORDER,
                        rel_path,
                        idx + 1,
                        f"memory order `{m.group(0)}` is not in the allowlist "
                        f"for this file (allowed: {sorted(allowed)}); update "
                        "tools/analysis/memory_order_allowlist.json if the "
                        "new ordering is intentional",
                    )
                )


def check_seqlock_window(rel_path, lines, funcs, findings):
    # Skip the VersionLock definition itself: AwaitVersion/LoadRaw bodies.
    if os.path.basename(rel_path) == "version_lock.h":
        return
    open_line = None  # 1-based line where the current window opened
    open_func = None
    for idx, line in enumerate(lines):
        func = funcs[idx] if idx < len(funcs) else None
        if open_line is not None and func != open_func:
            findings.append(
                Finding(
                    RULE_WINDOW,
                    rel_path,
                    open_line,
                    f"seqlock version read in {open_func}() is never "
                    "re-validated with LoadRaw() before the function ends",
                )
            )
            open_line = None
            open_func = None
        if open_line is not None:
            for pattern, reason in WINDOW_FORBIDDEN:
                m = pattern.search(line)
                if m:
                    findings.append(
                        Finding(
                            RULE_WINDOW,
                            rel_path,
                            idx + 1,
                            f"{reason} inside a seqlock read window (version "
                            f"read at line {open_line}); blocking or "
                            "allocating between AwaitVersion() and its "
                            "LoadRaw() validation can deadlock against the "
                            "writer that must bump the version",
                        )
                    )
            if WINDOW_CLOSE_RE.search(line):
                open_line = None
                open_func = None
        if open_line is None and WINDOW_OPEN_RE.search(line):
            if not WINDOW_CLOSE_RE.search(line):  # same-line open+close
                open_line = idx + 1
                open_func = func
    if open_line is not None:
        findings.append(
            Finding(
                RULE_WINDOW,
                rel_path,
                open_line,
                f"seqlock version read in {open_func}() is never re-validated "
                "with LoadRaw() before the function ends",
            )
        )


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def iter_source_files(paths):
    exts = (".h", ".hpp", ".cc", ".cpp", ".cxx")
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(exts):
                        yield os.path.join(root, name)
        else:
            raise FileNotFoundError(path)


def check_file(path, root, allowlist, stripper, rules):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    rel_path = os.path.relpath(path, root).replace(os.sep, "/")
    stripped = stripper(path, text)
    lines = stripped.split("\n")
    funcs = annotate_functions(stripped)
    findings = []
    if RULE_RAW in rules:
        check_raw_access(rel_path, lines, funcs, findings)
    if RULE_ORDER in rules:
        check_memory_order(rel_path, lines, allowlist, findings)
    if RULE_VECTOR in rules:
        check_vector_load(rel_path, lines, funcs, findings)
    if RULE_WINDOW in rules:
        check_seqlock_window(rel_path, lines, funcs, findings)
    return findings


EXPECT_RE = re.compile(r"//\s*EXPECT-VIOLATION\(([a-z-]+)\)")


def collect_expectations(path, root):
    """EXPECT-VIOLATION(rule) markers; each applies to the next source line."""
    expectations = []
    rel_path = os.path.relpath(path, root).replace(os.sep, "/")
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for idx, line in enumerate(f):
            for m in EXPECT_RE.finditer(line):
                rule = m.group(1)
                if rule not in ALL_RULES:
                    raise ValueError(
                        f"{rel_path}:{idx + 1}: unknown rule in "
                        f"EXPECT-VIOLATION: {rule}"
                    )
                expectations.append((rel_path, idx + 2, rule))
    return expectations


def run_fixture_mode(fixture_dir, root, allowlist, stripper, rules):
    ok = True
    all_findings = []
    for path in iter_source_files([fixture_dir]):
        expectations = set(collect_expectations(path, root))
        findings = check_file(path, root, allowlist, stripper, rules)
        all_findings.extend(findings)
        found = {f.key() for f in findings}
        expected = {(p, l, r) for (p, l, r) in expectations}
        for p, l, r in sorted(expected - found):
            print(f"FIXTURE MISS: {p}:{l}: expected [{r}] violation "
                  "was not reported")
            ok = False
        for f in findings:
            if f.key() not in expected:
                print(f"FIXTURE FALSE POSITIVE: {f}")
                ok = False
        label = "ok" if expected == found else "MISMATCH"
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        print(f"[{label}] {rel}: {len(expected)} expected, "
              f"{len(found)} reported")
    return ok, all_findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="seqlock / atomic-discipline checker"
    )
    parser.add_argument("paths", nargs="*", help="files or directories "
                        "(default: src/ under --root)")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths and the allowlist "
                        "(default: two levels above this script)")
    parser.add_argument("--config", default=None,
                        help="memory-order allowlist JSON (default: "
                        "memory_order_allowlist.json beside this script)")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="self-test mode against EXPECT-VIOLATION markers")
    parser.add_argument("--json", metavar="OUT",
                        help="write findings as a JSON array")
    parser.add_argument("--engine", choices=["auto", "regex", "libclang"],
                        default="auto", help="comment-stripping engine")
    parser.add_argument("--rule", action="append", choices=ALL_RULES,
                        help="restrict to specific rule(s)")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(script_dir))
    config_path = args.config or os.path.join(script_dir,
                                              "memory_order_allowlist.json")
    try:
        with open(config_path, "r", encoding="utf-8") as f:
            allowlist = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load allowlist {config_path}: {e}",
              file=sys.stderr)
        return 2

    try:
        stripper = make_stripper(args.engine)
    except Exception as e:
        print(f"error: engine {args.engine} unavailable: {e}", file=sys.stderr)
        return 2

    rules = tuple(args.rule) if args.rule else ALL_RULES

    if args.fixtures:
        ok, findings = run_fixture_mode(args.fixtures, root, allowlist,
                                        stripper, rules)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump([x.as_dict() for x in findings], f, indent=2)
        print("fixture self-test:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    paths = args.paths or [os.path.join(root, "src")]
    findings = []
    try:
        for path in iter_source_files(paths):
            findings.extend(check_file(path, root, allowlist, stripper, rules))
    except FileNotFoundError as e:
        print(f"error: no such file or directory: {e}", file=sys.stderr)
        return 2

    for f in findings:
        print(f)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump([x.as_dict() for x in findings], f, indent=2)
    n = len(findings)
    print(f"check_seqlock: {n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
