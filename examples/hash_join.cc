// hash_join: a database-style equi-join built on the cuckoo table — the
// "small key-value storage building block" use case from the paper's intro,
// in its classic analytics shape:
//
//   build phase : N threads insert the (key -> row id) of the build relation
//   probe phase : N threads stream the probe relation, batching lookups
//                 through FindBatch to hide DRAM latency
//
//   ./build/examples/hash_join [--build=1000000] [--probe=4000000] [--threads=4]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/benchkit/flags.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace {

// Build-side row: the join key plus a payload column.
struct BuildRow {
  std::uint64_t key;
  std::uint64_t payload;
};

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const std::uint64_t build_rows = static_cast<std::uint64_t>(flags.GetInt("build", 1000000));
  const std::uint64_t probe_rows = static_cast<std::uint64_t>(flags.GetInt("probe", 4000000));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  // Probe keys drawn from 2x the build key space => ~50% match rate.
  const std::uint64_t probe_space = build_rows * 2;

  cuckoo::CuckooMap<std::uint64_t, std::uint64_t> hash_table;
  hash_table.Reserve(build_rows);

  // ---- Build phase ---------------------------------------------------------
  cuckoo::Stopwatch build_watch;
  {
    std::vector<std::thread> team;
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([&, t] {
        for (std::uint64_t row = static_cast<std::uint64_t>(t); row < build_rows;
             row += static_cast<std::uint64_t>(threads)) {
          BuildRow r{cuckoo::Mix64(row), row * 10};
          if (hash_table.Insert(r.key, r.payload) != cuckoo::InsertResult::kOk) {
            std::fprintf(stderr, "duplicate build key?\n");
          }
        }
      });
    }
    for (auto& th : team) {
      th.join();
    }
  }
  double build_seconds = build_watch.ElapsedSeconds();

  // ---- Probe phase ----------------------------------------------------------
  std::atomic<std::uint64_t> matches{0};
  std::atomic<std::uint64_t> join_checksum{0};
  cuckoo::Stopwatch probe_watch;
  {
    std::vector<std::thread> team;
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([&, t] {
        cuckoo::Xorshift128Plus rng(4242 + t);
        constexpr std::size_t kBatch = 64;
        std::vector<std::uint64_t> keys(kBatch);
        std::vector<std::uint64_t> payloads(kBatch);
        std::unique_ptr<bool[]> found(new bool[kBatch]);
        std::uint64_t local_matches = 0;
        std::uint64_t local_checksum = 0;
        const std::uint64_t quota = probe_rows / static_cast<std::uint64_t>(threads);
        for (std::uint64_t done = 0; done < quota; done += kBatch) {
          std::size_t n = static_cast<std::size_t>(
              kBatch < quota - done ? kBatch : quota - done);
          for (std::size_t i = 0; i < n; ++i) {
            keys[i] = cuckoo::Mix64(rng.NextBelow(probe_space));
          }
          hash_table.FindBatch(keys.data(), n, payloads.data(), found.get());
          for (std::size_t i = 0; i < n; ++i) {
            if (found[i]) {
              ++local_matches;
              local_checksum += payloads[i];
            }
          }
        }
        matches.fetch_add(local_matches, std::memory_order_relaxed);
        join_checksum.fetch_add(local_checksum, std::memory_order_relaxed);
      });
    }
    for (auto& th : team) {
      th.join();
    }
  }
  double probe_seconds = probe_watch.ElapsedSeconds();

  const std::uint64_t probed = probe_rows / static_cast<std::uint64_t>(threads) *
                               static_cast<std::uint64_t>(threads);
  double match_rate = static_cast<double>(matches.load()) / static_cast<double>(probed);
  std::printf("hash_join: build %llu rows, probe %llu rows, %d threads\n",
              static_cast<unsigned long long>(build_rows),
              static_cast<unsigned long long>(probed), threads);
  std::printf("  build : %.2fs (%.2f Mrows/s), table %.1f MiB, load %.3f\n", build_seconds,
              static_cast<double>(build_rows) / build_seconds / 1e6,
              static_cast<double>(hash_table.HeapBytes()) / 1048576.0,
              hash_table.LoadFactor());
  std::printf("  probe : %.2fs (%.2f Mrows/s, batched lookups)\n", probe_seconds,
              static_cast<double>(probed) / probe_seconds / 1e6);
  std::printf("  joins : %llu matches (%.3f rate, expect ~0.5), checksum %llx\n",
              static_cast<unsigned long long>(matches.load()), match_rate,
              static_cast<unsigned long long>(join_checksum.load()));

  if (match_rate < 0.45 || match_rate > 0.55) {
    std::fprintf(stderr, "match rate out of expected band\n");
    return 1;
  }
  return 0;
}
