// Quickstart: the CuckooMap public API in two minutes.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdint>
#include <cstdio>

#include "src/cuckoo/cuckoo_map.h"

int main() {
  // An 8-way set-associative, auto-expanding concurrent cuckoo hash table.
  // All operations are safe to call from any number of threads.
  cuckoo::CuckooMap<std::uint64_t, std::uint64_t> map;

  // Insert: fails with kKeyExists on duplicates.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (map.Insert(i, i * i) != cuckoo::InsertResult::kOk) {
      std::printf("unexpected insert failure at %llu\n", static_cast<unsigned long long>(i));
      return 1;
    }
  }

  // Find copies the value out (reads are lock-free and never block writers).
  std::uint64_t value = 0;
  if (map.Find(25, &value)) {
    std::printf("map[25] = %llu\n", static_cast<unsigned long long>(value));
  }

  // Upsert overwrites; Update only touches existing keys; UpsertWith applies
  // a function under the bucket locks (atomic read-modify-write).
  map.Upsert(25, 1);
  map.Update(25, 2);
  map.UpsertWith(25, [](std::uint64_t& v) { ++v; }, 0);
  map.Find(25, &value);
  std::printf("after upsert/update/upsert_with: map[25] = %llu\n",
              static_cast<unsigned long long>(value));  // 3

  // Erase.
  map.Erase(25);
  std::printf("contains(25) after erase: %s\n", map.Contains(25) ? "yes" : "no");

  // Capacity and statistics.
  std::printf("size=%zu slots=%zu load_factor=%.3f heap=%.1f KiB\n", map.Size(),
              map.SlotCount(), map.LoadFactor(),
              static_cast<double>(map.HeapBytes()) / 1024.0);

  // Exclusive iteration: LockedView holds every lock stripe for its lifetime.
  std::uint64_t checksum = 0;
  {
    auto view = map.Lock();
    for (auto [key, val] : view) {
      checksum ^= key ^ val;
    }
  }
  std::printf("xor checksum over %zu entries: %llx\n", map.Size(),
              static_cast<unsigned long long>(checksum));

  // Operation statistics (per-thread counters, aggregated lazily).
  cuckoo::MapStatsSnapshot stats = map.Stats();
  std::printf("inserts=%lld lookups=%lld displacements=%lld expansions=%lld\n",
              static_cast<long long>(stats.inserts), static_cast<long long>(stats.lookups),
              static_cast<long long>(stats.displacements),
              static_cast<long long>(stats.expansions));
  return 0;
}
