// kv_cache: a MemC3/memcached-style in-process key-value cache — the workload
// that motivated the paper's table (small fixed-size items, high GET/SET
// concurrency, occasional DELETE).
//
// Simulates N client threads issuing a GET-heavy mix against one shared
// cuckoo table and prints per-op-type throughput and hit rates, plus the
// table's internal statistics.
//
//   ./build/examples/kv_cache [--threads=4] [--ops=2000000] [--get=0.90]
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/benchkit/flags.h"
#include "src/common/random.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace {

// A cache entry: 24-byte value plus a coarse "expiry" stamp, all inline —
// no pointers, the memory layout the paper's design is built for.
struct CacheValue {
  std::array<char, 24> payload;
  std::uint32_t version;
  std::uint32_t expiry_epoch;
};

using Cache = cuckoo::CuckooMap<std::uint64_t, CacheValue>;

struct WorkerTotals {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::uint64_t total_ops = static_cast<std::uint64_t>(flags.GetInt("ops", 2000000));
  const double get_fraction = flags.GetDouble("get", 0.90);
  const std::uint64_t key_space = static_cast<std::uint64_t>(flags.GetInt("keys", 1 << 18));

  Cache::Options options;
  options.initial_bucket_count_log2 = 15;  // grows on demand
  Cache cache(options);

  // Warm the cache to ~60% of the key space.
  for (std::uint64_t k = 0; k < key_space * 6 / 10; ++k) {
    CacheValue v{};
    v.version = 1;
    cache.Insert(cuckoo::Mix64(k), v);
  }

  std::vector<WorkerTotals> totals(threads);
  std::vector<std::thread> team;
  const std::uint64_t ops_per_thread = total_ops / static_cast<std::uint64_t>(threads);
  cuckoo::Stopwatch watch;

  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      cuckoo::Xorshift128Plus rng(1000 + t);
      // Zipf-skewed key popularity, like a real cache.
      cuckoo::ZipfGenerator zipf(key_space, 0.9, 77 + t);
      WorkerTotals& mine = totals[t];
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        std::uint64_t key = cuckoo::Mix64(zipf.Next());
        double dice = rng.NextDouble();
        if (dice < get_fraction) {
          CacheValue v;
          ++mine.gets;
          if (cache.Find(key, &v)) {
            ++mine.get_hits;
          } else {
            // Miss path: fetch from "backend" and populate.
            CacheValue fresh{};
            fresh.version = 1;
            cache.Upsert(key, fresh);
            ++mine.sets;
          }
        } else if (dice < get_fraction + (1.0 - get_fraction) * 0.8) {
          // SET: overwrite (or create) with a bumped version.
          cache.UpsertWith(
              key, [](CacheValue& v) { ++v.version; }, CacheValue{});
          ++mine.sets;
        } else {
          cache.Erase(key);
          ++mine.deletes;
        }
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  double seconds = watch.ElapsedSeconds();

  WorkerTotals sum;
  for (const WorkerTotals& w : totals) {
    sum.gets += w.gets;
    sum.get_hits += w.get_hits;
    sum.sets += w.sets;
    sum.deletes += w.deletes;
  }

  std::printf("kv_cache: %d threads, %.2fs\n", threads, seconds);
  std::printf("  throughput : %.2f Mops/s\n",
              static_cast<double>(sum.gets + sum.sets + sum.deletes) / seconds / 1e6);
  std::printf("  GET        : %llu (hit rate %.3f)\n",
              static_cast<unsigned long long>(sum.gets),
              sum.gets ? static_cast<double>(sum.get_hits) / static_cast<double>(sum.gets) : 0.0);
  std::printf("  SET        : %llu\n", static_cast<unsigned long long>(sum.sets));
  std::printf("  DELETE     : %llu\n", static_cast<unsigned long long>(sum.deletes));
  std::printf("  entries    : %zu (load %.3f, %.1f MiB heap, %zu expansions)\n", cache.Size(),
              cache.LoadFactor(), static_cast<double>(cache.HeapBytes()) / 1048576.0,
              static_cast<std::size_t>(cache.Stats().expansions));
  cuckoo::MapStatsSnapshot stats = cache.Stats();
  std::printf("  cuckoo     : %lld displacements, mean path %.3f, %lld read retries\n",
              static_cast<long long>(stats.displacements), stats.MeanPathLength(),
              static_cast<long long>(stats.read_retries));
  return 0;
}
