// dedup: concurrent stream deduplication — N worker threads consume a
// synthetic event stream (with a configurable duplicate rate) and use a
// shared CuckooMap as the "seen" set. Insert's kOk/kKeyExists result is the
// dedup decision, so no separate membership check is needed and the decision
// is atomic under concurrency.
//
//   ./build/examples/dedup [--threads=4] [--events=4000000] [--dup=0.3]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/benchkit/flags.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace {

// A synthetic 32-byte event record; the dedup key is its xxHash64.
struct Event {
  std::uint64_t source;
  std::uint64_t sequence;
  std::uint64_t payload[2];
};

Event MakeEvent(cuckoo::Xorshift128Plus& rng, std::uint64_t unique_space, double dup_rate) {
  Event event;
  // With probability dup_rate, re-emit an "old" record; otherwise a fresh one.
  std::uint64_t id = rng.NextDouble() < dup_rate ? rng.NextBelow(unique_space / 2 + 1)
                                                 : rng.NextBelow(unique_space);
  event.source = id % 64;
  event.sequence = id;
  event.payload[0] = cuckoo::Mix64(id);
  event.payload[1] = cuckoo::Fmix64(id);
  return event;
}

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::uint64_t events = static_cast<std::uint64_t>(flags.GetInt("events", 4000000));
  const double dup_rate = flags.GetDouble("dup", 0.3);
  const std::uint64_t unique_space = events / 2;

  // Value = first-seen thread id (any payload works; the set is the point).
  cuckoo::CuckooMap<std::uint64_t, std::uint32_t> seen;
  seen.Reserve(unique_space);

  std::atomic<std::uint64_t> unique_total{0};
  std::atomic<std::uint64_t> duplicate_total{0};
  std::vector<std::thread> team;
  cuckoo::Stopwatch watch;

  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      cuckoo::Xorshift128Plus rng(9000 + t);
      std::uint64_t unique = 0;
      std::uint64_t duplicates = 0;
      const std::uint64_t quota = events / static_cast<std::uint64_t>(threads);
      for (std::uint64_t i = 0; i < quota; ++i) {
        Event event = MakeEvent(rng, unique_space, dup_rate);
        std::uint64_t digest = cuckoo::XxHash64(&event, sizeof(event));
        switch (seen.Insert(digest, static_cast<std::uint32_t>(t))) {
          case cuckoo::InsertResult::kOk:
            ++unique;
            break;
          case cuckoo::InsertResult::kKeyExists:
            ++duplicates;
            break;
          case cuckoo::InsertResult::kTableFull:
            std::fprintf(stderr, "dedup set unexpectedly full\n");
            return;
        }
      }
      unique_total.fetch_add(unique, std::memory_order_relaxed);
      duplicate_total.fetch_add(duplicates, std::memory_order_relaxed);
    });
  }
  for (auto& th : team) {
    th.join();
  }
  double seconds = watch.ElapsedSeconds();

  std::uint64_t processed = unique_total.load() + duplicate_total.load();
  std::printf("dedup: %llu events on %d threads in %.2fs (%.2f Mevents/s)\n",
              static_cast<unsigned long long>(processed), threads, seconds,
              static_cast<double>(processed) / seconds / 1e6);
  std::printf("  unique     : %llu\n", static_cast<unsigned long long>(unique_total.load()));
  std::printf("  duplicates : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(duplicate_total.load()),
              100.0 * static_cast<double>(duplicate_total.load()) /
                  static_cast<double>(processed));
  std::printf("  set size   : %zu entries, %.1f MiB, load %.3f\n", seen.Size(),
              static_cast<double>(seen.HeapBytes()) / 1048576.0, seen.LoadFactor());

  // Sanity: the map's size must equal the number of kOk results.
  if (seen.Size() != unique_total.load()) {
    std::fprintf(stderr, "MISMATCH: set size %zu != unique count %llu\n", seen.Size(),
                 static_cast<unsigned long long>(unique_total.load()));
    return 1;
  }
  return 0;
}
