// url_frequency: concurrent frequency counting over a skewed stream of
// fixed-width URL-ish keys — exercises UpsertWith (atomic read-modify-write
// under bucket locks), non-integral keys, and LockedView iteration for the
// final top-k report.
//
//   ./build/examples/url_frequency [--threads=4] [--requests=2000000]
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/benchkit/flags.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace {

// Fixed-width key: a truncated/padded URL path. Trivially copyable, as the
// optimistic read protocol requires.
struct UrlKey {
  std::array<char, 32> bytes{};
  bool operator==(const UrlKey& other) const { return bytes == other.bytes; }
};

struct UrlKeyHash {
  std::uint64_t operator()(const UrlKey& key) const noexcept {
    return cuckoo::XxHash64(key.bytes.data(), key.bytes.size());
  }
};

UrlKey MakeUrl(std::uint64_t site, std::uint64_t page) {
  UrlKey key;
  std::snprintf(key.bytes.data(), key.bytes.size(), "/site%03llu/page%06llu",
                static_cast<unsigned long long>(site), static_cast<unsigned long long>(page));
  return key;
}

using FrequencyMap = cuckoo::CuckooMap<UrlKey, std::uint64_t, UrlKeyHash>;

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::uint64_t requests = static_cast<std::uint64_t>(flags.GetInt("requests", 2000000));
  const std::uint64_t distinct_urls = static_cast<std::uint64_t>(flags.GetInt("urls", 200000));

  FrequencyMap counts;
  counts.Reserve(distinct_urls);

  std::vector<std::thread> team;
  cuckoo::Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      // Zipf-skewed page popularity, like real web traffic.
      cuckoo::ZipfGenerator zipf(distinct_urls, 0.8, 55 + t);
      const std::uint64_t quota = requests / static_cast<std::uint64_t>(threads);
      for (std::uint64_t i = 0; i < quota; ++i) {
        std::uint64_t id = zipf.Next();
        UrlKey url = MakeUrl(id % 997, id);
        counts.UpsertWith(url, [](std::uint64_t& c) { ++c; }, 1);
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  double seconds = watch.ElapsedSeconds();

  // Exclusive sweep for the top-10 and the total (verifies no lost updates).
  struct Top {
    std::uint64_t count;
    UrlKey url;
  };
  std::vector<Top> top;
  std::uint64_t total = 0;
  {
    auto view = counts.Lock();
    for (auto [url, count] : view) {
      total += count;
      top.push_back(Top{count, url});
      std::push_heap(top.begin(), top.end(),
                     [](const Top& a, const Top& b) { return a.count > b.count; });
      if (top.size() > 10) {
        std::pop_heap(top.begin(), top.end(),
                      [](const Top& a, const Top& b) { return a.count > b.count; });
        top.pop_back();
      }
    }
  }
  std::sort(top.begin(), top.end(), [](const Top& a, const Top& b) { return a.count > b.count; });

  std::printf("url_frequency: %llu requests on %d threads in %.2fs (%.2f Mreq/s)\n",
              static_cast<unsigned long long>(requests), threads, seconds,
              static_cast<double>(requests) / seconds / 1e6);
  std::printf("  distinct urls counted: %zu\n", counts.Size());
  std::printf("  top-10:\n");
  for (const Top& entry : top) {
    std::printf("    %8llu  %s\n", static_cast<unsigned long long>(entry.count),
                entry.url.bytes.data());
  }

  const std::uint64_t expected = (requests / static_cast<std::uint64_t>(threads)) *
                                 static_cast<std::uint64_t>(threads);
  if (total != expected) {
    std::fprintf(stderr, "MISMATCH: summed counts %llu != requests %llu (lost updates!)\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  std::printf("  total counts check: OK (%llu)\n", static_cast<unsigned long long>(total));
  return 0;
}
