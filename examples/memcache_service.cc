// memcache_service: an in-process memcached-protocol service (the MemC3
// shape) driven by N client threads speaking the real text protocol through
// the streaming codec — measures end-to-end requests/s including parsing and
// response serialization, not just raw table ops.
//
//   ./build/examples/memcache_service [--threads=4] [--requests=400000] [--get=0.9]
//   ./build/examples/memcache_service --socket   (clients speak over a real
//                                                 UNIX domain socket)
//   ./build/examples/memcache_service --socket --tcp      (TCP loopback)
//   ./build/examples/memcache_service --batch=16          (multi-key gets)
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchkit/flags.h"
#include "src/common/random.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::uint64_t requests = static_cast<std::uint64_t>(flags.GetInt("requests", 400000));
  const double get_fraction = flags.GetDouble("get", 0.9);
  const std::uint64_t key_space = static_cast<std::uint64_t>(flags.GetInt("keys", 50000));

  const bool use_socket = flags.GetBool("socket");
  const bool use_tcp = flags.GetBool("tcp");
  // Keys per get request; >1 issues memcached multi-key gets, which the
  // service answers with one batched (prefetching) table pass.
  const std::size_t batch = static_cast<std::size_t>(flags.GetInt("batch", 1));

  cuckoo::KvService service;
  cuckoo::SocketServer::Options server_opts;
  server_opts.unix_path = "/tmp/cuckoo_memcache_example.sock";
  server_opts.enable_tcp = use_tcp;
  cuckoo::SocketServer server(&service, server_opts);
  if (use_socket && !server.Start()) {
    std::fprintf(stderr, "could not start socket server\n");
    return 1;
  }

  std::atomic<std::uint64_t> responses_bytes{0};
  std::vector<std::thread> team;
  cuckoo::Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      auto conn = service.Connect();
      std::unique_ptr<cuckoo::SocketClient> socket_client;
      if (use_socket) {
        socket_client = use_tcp ? std::make_unique<cuckoo::SocketClient>("127.0.0.1",
                                                                         server.tcp_port())
                                : std::make_unique<cuckoo::SocketClient>(server.path());
        if (!socket_client->connected()) {
          std::fprintf(stderr, "client %d could not connect\n", t);
          return;
        }
      }
      cuckoo::Xorshift128Plus rng(31337 + t);
      cuckoo::ZipfGenerator zipf(key_space, 0.9, 11 + t);
      std::string request;
      std::string response;
      std::uint64_t bytes = 0;
      const std::uint64_t quota = requests / static_cast<std::uint64_t>(threads);
      for (std::uint64_t i = 0; i < quota; ++i) {
        std::uint64_t id = zipf.Next();
        std::string key = "object:" + std::to_string(id);
        request.clear();
        if (rng.NextDouble() < get_fraction) {
          request = "get " + key;
          for (std::size_t b = 1; b < batch; ++b) {
            request += " object:" + std::to_string(zipf.Next());
          }
          request += "\r\n";
        } else {
          std::string value = "payload-" + std::to_string(id) + "-" +
                              std::to_string(rng.NextBelow(1000));
          request = "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                    "\r\n";
        }
        response.clear();
        if (use_socket) {
          // GETs end with END\r\n; SETs with STORED\r\n — both end in \r\n and
          // arrive whole because requests are strictly serialized per client.
          response = socket_client->RoundTrip(
              request, request.rfind("get ", 0) == 0 ? "END\r\n" : "\r\n");
        } else {
          conn.Drive(request, &response);
        }
        bytes += response.size();
      }
      responses_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
  }
  for (auto& th : team) {
    th.join();
  }
  double seconds = watch.ElapsedSeconds();
  if (use_socket) {
    server.Stop();
  }

  const std::uint64_t total = requests / static_cast<std::uint64_t>(threads) *
                              static_cast<std::uint64_t>(threads);
  std::printf("memcache_service: %llu protocol requests on %d %s connections in %.2fs\n",
              static_cast<unsigned long long>(total), threads,
              use_socket ? (use_tcp ? "tcp-socket" : "unix-socket") : "in-process", seconds);
  if (batch > 1) {
    std::printf("  gets issued as %zu-key multi-gets\n", batch);
  }
  std::printf("  throughput : %.2f Mreq/s (%.1f MiB of responses)\n",
              static_cast<double>(total) / seconds / 1e6,
              static_cast<double>(responses_bytes.load()) / 1048576.0);
  std::printf("  items      : %zu\n", service.ItemCount());
  std::printf("  get hits   : %llu, misses %llu (hit rate %.3f)\n",
              static_cast<unsigned long long>(service.GetHits()),
              static_cast<unsigned long long>(service.GetMisses()),
              static_cast<double>(service.GetHits()) /
                  static_cast<double>(service.GetHits() + service.GetMisses() + 1));
  return 0;
}
