// google-benchmark microbenchmarks for the substrate primitives: hash
// functions, lock acquisition costs (spinlock / version lock / elided lock),
// and single-operation map latencies. These quantify the "lightweight
// spinlock" and "one hash computation per key" design choices.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "src/baselines/chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/spinlock.h"
#include "src/common/version_lock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/simd_probe.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

namespace cuckoo {
namespace {

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_XxHash64(benchmark::State& state) {
  std::vector<char> buf(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_XxHash64)->Arg(8)->Arg(16)->Arg(64)->Arg(256)->Arg(4096);

void BM_SpinLockUncontended(benchmark::State& state) {
  SpinLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_VersionLockUncontended(benchmark::State& state) {
  VersionLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_VersionLockUncontended);

void BM_MutexUncontended(benchmark::State& state) {
  std::mutex lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_ElidedLockUncontended(benchmark::State& state) {
  ElidedLock<SpinLock> lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_ElidedLockUncontended);

void BM_OptimisticReadValidation(benchmark::State& state) {
  // Cost of the seqlock-style read protocol (version snapshot + fence +
  // revalidation) with no writer active.
  VersionLock lock;
  std::uint64_t payload = 42;
  for (auto _ : state) {
    std::uint64_t v1 = lock.AwaitVersion();
    std::uint64_t data = payload;
    std::atomic_thread_fence(std::memory_order_acquire);
    bool ok = lock.LoadRaw() == v1;
    benchmark::DoNotOptimize(data);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_OptimisticReadValidation);

// ---- tag-probe kernels (simd_probe.h) --------------------------------------
// Arg(0..2) selects the dispatch level (scalar / sse2 / avx2); unsupported
// levels are skipped. A pool of pre-generated tag groups keeps the working
// set register/L1-resident, so this isolates the compare+movemask cost from
// the memory system — the table-level A/B lives in fig08 --ab.

template <int B>
void FillRandomGroups(std::vector<simd::TagGroup<B>>* groups, std::uint64_t seed) {
  Xorshift128Plus rng(seed);
  for (auto& g : *groups) {
    for (int s = 0; s < B; ++s) {
      g.bytes[s] = static_cast<std::uint8_t>(rng.NextBelow(8));
    }
  }
}

template <int B>
void BM_ProbeMatchTag(benchmark::State& state) {
  const auto level = static_cast<simd::ProbeLevel>(state.range(0));
  if (!simd::ProbeLevelSupported(level)) {
    state.SkipWithError("probe level not supported on this host");
    return;
  }
  const simd::ProbeLevel prev = simd::SetProbeLevelForTesting(level);
  std::vector<simd::TagGroup<B>> groups(256);
  FillRandomGroups<B>(&groups, 0x9a0b + B);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::MatchTagMask<B>(groups[i & 255], static_cast<std::uint8_t>(i & 7)));
    ++i;
  }
  simd::SetProbeLevelForTesting(prev);
  state.SetLabel(simd::ProbeLevelName(level));
}
BENCHMARK_TEMPLATE(BM_ProbeMatchTag, 4)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_ProbeMatchTag, 8)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_ProbeMatchTag, 16)->Arg(0)->Arg(1)->Arg(2);

template <int B>
void BM_ProbeMatchTag2(benchmark::State& state) {
  const auto level = static_cast<simd::ProbeLevel>(state.range(0));
  if (!simd::ProbeLevelSupported(level)) {
    state.SkipWithError("probe level not supported on this host");
    return;
  }
  const simd::ProbeLevel prev = simd::SetProbeLevelForTesting(level);
  std::vector<simd::TagGroup<B>> groups(512);
  FillRandomGroups<B>(&groups, 0x9a0c + B);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::MatchTagMask2<B>(groups[i & 255], groups[256 + (i & 255)],
                                                    static_cast<std::uint8_t>(i & 7)));
    ++i;
  }
  simd::SetProbeLevelForTesting(prev);
  state.SetLabel(simd::ProbeLevelName(level));
}
BENCHMARK_TEMPLATE(BM_ProbeMatchTag2, 8)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_ProbeMatchTag2, 16)->Arg(0)->Arg(1)->Arg(2);

void BM_CuckooFind(benchmark::State& state) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 14;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  const std::uint64_t n = static_cast<std::uint64_t>(map.SlotCount() * 0.9);
  for (std::uint64_t i = 0; i < n; ++i) {
    map.Insert(Mix64(i), i);
  }
  std::uint64_t i = 0;
  std::uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Mix64(i % n), &v));
    ++i;
  }
}
BENCHMARK(BM_CuckooFind);

void BM_CuckooInsertErase(benchmark::State& state) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 14;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  const std::uint64_t n = static_cast<std::uint64_t>(map.SlotCount() * 0.8);
  for (std::uint64_t i = 0; i < n; ++i) {
    map.Insert(Mix64(i), i);
  }
  std::uint64_t i = n;
  for (auto _ : state) {
    map.Insert(Mix64(i), i);
    map.Erase(Mix64(i));
    ++i;
  }
}
BENCHMARK(BM_CuckooInsertErase);

void BM_DenseFind(benchmark::State& state) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) {
    map.Insert(Mix64(i), i);
  }
  std::uint64_t i = 0;
  std::uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Mix64(i % n), &v));
    ++i;
  }
}
BENCHMARK(BM_DenseFind);

void BM_ChainingFind(benchmark::State& state) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) {
    map.Insert(Mix64(i), i);
  }
  std::uint64_t i = 0;
  std::uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Mix64(i % n), &v));
    ++i;
  }
}
BENCHMARK(BM_ChainingFind);

}  // namespace
}  // namespace cuckoo

BENCHMARK_MAIN();
