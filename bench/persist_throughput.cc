// persist_throughput: durability-subsystem benchmark for the KV server.
//
// Two experiments, both over a real unix socket with synchronous
// (request/response) writers so every set waits for its durability ack:
//
//   1. fsync policy sweep — 8 concurrent writers against fsync_policy =
//      none / everysec / always. Reports sets/s plus the WAL's fsync and
//      group-commit counters; under `always` the interesting number is
//      acks_per_fsync: with >= 8 clients blocked on the log, one fsync
//      should cover many acks (group commit), not one.
//
//   2. online snapshot impact — same writer fleet under everysec, measured
//      once undisturbed (baseline) and once while the snapshot worker is
//      kept continuously busy taking fuzzy snapshots. The walk holds at
//      most one lock stripe at a time, so the during/baseline throughput
//      ratio should stay well above 0.5.
//
// Emits BENCH_persist.json (path via --out). --smoke shrinks everything
// for a seconds-scale CI sanity run; in smoke mode the group-commit and
// snapshot-ratio expectations are enforced (non-zero exit on violation).
//
//   ./build/bench/persist_throughput [--clients=8] [--ops=5000]
//       [--value_size=100] [--keyspace=20000] [--smoke]
//       [--out=BENCH_persist.json]
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/flags.h"
#include "src/common/file_util.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/obs/histogram.h"
#include "src/persist/durability.h"

namespace {

using cuckoo::persist::FsyncPolicy;

struct SweepResult {
  std::string policy;
  std::uint64_t sets = 0;
  double seconds = 0;
  double sets_per_sec = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t group_commits = 0;
  std::uint64_t max_batch_records = 0;
  double acks_per_fsync = 0;
  cuckoo::obs::HistogramSnapshot durable_ns;      // WAL append -> durable
  cuckoo::obs::HistogramSnapshot batch_records;   // group-commit batch sizes
};

struct OnlineResult {
  double baseline_sets_per_sec = 0;
  double during_snapshot_sets_per_sec = 0;
  double ratio = 0;
  std::uint64_t snapshots_completed = 0;
  std::uint64_t snapshot_entries = 0;
};

std::string MakeTempDir() {
  std::string tmpl = "/tmp/cuckoo_persist_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  return made != nullptr ? std::string(made) : std::string();
}

void RemoveTree(const std::string& dir) {
  for (const std::string& name : cuckoo::ListFilesWithPrefix(dir, "")) {
    cuckoo::RemoveFile(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

// One server + durability stack, torn down (and its files removed) on exit.
struct Harness {
  std::string wal_dir;
  cuckoo::KvService service;
  cuckoo::persist::DurabilityManager durability{&service};
  cuckoo::SocketServer::Options server_options;
  std::unique_ptr<cuckoo::SocketServer> server;

  bool Start(FsyncPolicy policy, const std::string& sock_path, int event_threads) {
    wal_dir = MakeTempDir();
    if (wal_dir.empty()) {
      return false;
    }
    cuckoo::persist::DurabilityOptions options;
    options.dir = wal_dir;
    options.fsync_policy = policy;
    std::string error;
    if (!durability.Start(options, &error)) {
      std::fprintf(stderr, "durability start failed: %s\n", error.c_str());
      return false;
    }
    server_options.unix_path = sock_path;
    server_options.enable_tcp = false;
    // Group-commit depth is bounded by how many requests can block in
    // WaitDurable at once, i.e. by event threads — give each client one.
    server_options.event_threads = event_threads;
    server = std::make_unique<cuckoo::SocketServer>(&service, server_options);
    return server->Start();
  }

  ~Harness() {
    if (server) {
      server->Stop();
    }
    durability.Stop();
    if (!wal_dir.empty()) {
      RemoveTree(wal_dir);
    }
  }
};

// `clients` threads each issue `ops` synchronous sets; returns total seconds.
double RunWriters(const std::string& sock_path, int clients, std::uint64_t ops,
                  std::uint64_t keyspace, const std::string& value, bool* ok) {
  std::atomic<bool> failed{false};
  std::vector<std::thread> team;
  cuckoo::Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    team.emplace_back([&, c] {
      cuckoo::SocketClient client(sock_path);
      if (!client.connected()) {
        failed.store(true);
        return;
      }
      std::uint64_t cursor = static_cast<std::uint64_t>(c) * 7919;
      for (std::uint64_t i = 0; i < ops; ++i) {
        const std::string key = "key" + std::to_string(cursor++ % keyspace);
        const std::string response = client.RoundTrip(
            "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                "\r\n",
            "\r\n");
        if (response != "STORED\r\n") {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : team) {
    t.join();
  }
  *ok = !failed.load();
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const int clients = static_cast<int>(flags.GetInt("clients", 8));
  const std::uint64_t ops =
      static_cast<std::uint64_t>(flags.GetInt("ops", smoke ? 400 : 5000));
  const std::uint64_t keyspace =
      static_cast<std::uint64_t>(flags.GetInt("keyspace", 20000));
  const std::size_t value_size = static_cast<std::size_t>(flags.GetInt("value_size", 100));
  const std::string out_path = flags.GetString("out", "BENCH_persist.json");
  const std::string value(value_size, 'v');

  // ---- 1. fsync policy sweep ---------------------------------------------
  const FsyncPolicy policies[] = {FsyncPolicy::kNone, FsyncPolicy::kEverySec,
                                  FsyncPolicy::kAlways};
  std::vector<SweepResult> sweep;
  for (FsyncPolicy policy : policies) {
    const std::string sock = "/tmp/cuckoo_persist_bench.sock";
    Harness harness;
    if (!harness.Start(policy, sock, clients)) {
      std::fprintf(stderr, "cannot start harness\n");
      return 1;
    }
    bool ok = false;
    const double seconds = RunWriters(sock, clients, ops, keyspace, value, &ok);
    if (!ok) {
      std::fprintf(stderr, "writer failed in policy sweep\n");
      return 1;
    }
    const cuckoo::persist::WalStats w = harness.durability.wal().Stats();
    SweepResult r;
    r.policy = cuckoo::persist::FsyncPolicyName(policy);
    r.sets = static_cast<std::uint64_t>(clients) * ops;
    r.seconds = seconds;
    r.sets_per_sec = seconds > 0 ? static_cast<double>(r.sets) / seconds : 0;
    r.fsyncs = w.fsyncs;
    r.group_commits = w.group_commits;
    r.max_batch_records = w.max_batch_records;
    r.acks_per_fsync = w.fsyncs > 0 ? static_cast<double>(r.sets) / w.fsyncs : 0;
    r.durable_ns = harness.durability.AppendDurableSnapshot();
    r.batch_records = harness.durability.wal().BatchRecordsSnapshot();
    sweep.push_back(r);
  }

  // ---- 2. online snapshot impact (everysec) ------------------------------
  OnlineResult online;
  {
    const std::string sock = "/tmp/cuckoo_persist_bench.sock";
    Harness harness;
    if (!harness.Start(FsyncPolicy::kEverySec, sock, clients)) {
      std::fprintf(stderr, "cannot start harness\n");
      return 1;
    }
    bool ok = false;
    // Warm the keyspace so snapshots have real work to do.
    RunWriters(sock, clients, keyspace / clients + 1, keyspace, value, &ok);
    if (!ok) {
      return 1;
    }
    const double baseline_s = RunWriters(sock, clients, ops, keyspace, value, &ok);
    if (!ok) {
      return 1;
    }
    online.baseline_sets_per_sec =
        static_cast<double>(clients) * ops / (baseline_s > 0 ? baseline_s : 1);

    // Keep the snapshot worker saturated while the same load repeats.
    std::atomic<bool> stop_snapshots{false};
    std::thread snapshotter([&] {
      while (!stop_snapshots.load(std::memory_order_relaxed)) {
        harness.durability.TriggerSnapshot();
        harness.durability.WaitForSnapshot();
      }
    });
    const double during_s = RunWriters(sock, clients, ops, keyspace, value, &ok);
    stop_snapshots.store(true);
    snapshotter.join();
    if (!ok) {
      return 1;
    }
    online.during_snapshot_sets_per_sec =
        static_cast<double>(clients) * ops / (during_s > 0 ? during_s : 1);
    online.ratio = online.baseline_sets_per_sec > 0
                       ? online.during_snapshot_sets_per_sec / online.baseline_sets_per_sec
                       : 0;
    online.snapshots_completed = harness.durability.SnapshotsCompleted();
    online.snapshot_entries = harness.service.ItemCount();
  }

  // ---- report ------------------------------------------------------------
  std::printf("== persist_throughput ==\n");
  std::printf("clients=%d ops/client=%llu value=%zuB keyspace=%llu\n", clients,
              static_cast<unsigned long long>(ops), value_size,
              static_cast<unsigned long long>(keyspace));
  for (const SweepResult& r : sweep) {
    std::printf("  fsync=%-9s %10.0f sets/s  fsyncs=%llu group_commits=%llu "
                "acks/fsync=%.1f max_batch=%llu\n",
                r.policy.c_str(), r.sets_per_sec,
                static_cast<unsigned long long>(r.fsyncs),
                static_cast<unsigned long long>(r.group_commits), r.acks_per_fsync,
                static_cast<unsigned long long>(r.max_batch_records));
    std::printf("            durable p50/p99/p999=%llu/%llu/%llu us  batch p50/max=%llu/%llu\n",
                static_cast<unsigned long long>(r.durable_ns.P50() / 1000),
                static_cast<unsigned long long>(r.durable_ns.P99() / 1000),
                static_cast<unsigned long long>(r.durable_ns.P999() / 1000),
                static_cast<unsigned long long>(r.batch_records.P50()),
                static_cast<unsigned long long>(r.batch_records.Max()));
  }
  std::printf("  online snapshot: baseline %.0f sets/s, during %.0f sets/s "
              "(ratio %.2f, %llu snapshots of %llu entries)\n",
              online.baseline_sets_per_sec, online.during_snapshot_sets_per_sec,
              online.ratio, static_cast<unsigned long long>(online.snapshots_completed),
              static_cast<unsigned long long>(online.snapshot_entries));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"persist_throughput\",\n");
  std::fprintf(out,
               "  \"config\": {\"clients\": %d, \"ops_per_client\": %llu, "
               "\"value_size\": %zu, \"keyspace\": %llu, \"smoke\": %s},\n",
               clients, static_cast<unsigned long long>(ops), value_size,
               static_cast<unsigned long long>(keyspace), smoke ? "true" : "false");
  std::fprintf(out, "  \"fsync_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    std::fprintf(out,
                 "    {\"policy\": \"%s\", \"sets\": %llu, \"seconds\": %.4f, "
                 "\"sets_per_sec\": %.1f, \"fsyncs\": %llu, \"group_commits\": %llu, "
                 "\"max_batch_records\": %llu, \"acks_per_fsync\": %.2f,\n",
                 r.policy.c_str(), static_cast<unsigned long long>(r.sets), r.seconds,
                 r.sets_per_sec, static_cast<unsigned long long>(r.fsyncs),
                 static_cast<unsigned long long>(r.group_commits),
                 static_cast<unsigned long long>(r.max_batch_records), r.acks_per_fsync);
    std::string latency = "     ";
    cuckoo::AppendJsonHistogram("append_durable_ns", r.durable_ns, &latency);
    latency += ",\n     ";
    cuckoo::AppendJsonHistogram("group_commit_records", r.batch_records, &latency);
    std::fprintf(out, "%s}%s\n", latency.c_str(), i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"online_snapshot\": {\"baseline_sets_per_sec\": %.1f, "
               "\"during_snapshot_sets_per_sec\": %.1f, \"ratio\": %.3f, "
               "\"snapshots_completed\": %llu, \"entries\": %llu}\n",
               online.baseline_sets_per_sec, online.during_snapshot_sets_per_sec,
               online.ratio, static_cast<unsigned long long>(online.snapshots_completed),
               static_cast<unsigned long long>(online.snapshot_entries));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity gates (always-on; they encode the acceptance criteria).
  const SweepResult& always = sweep.back();
  if (always.fsyncs == 0 || always.acks_per_fsync < 1.5) {
    std::fprintf(stderr, "FAIL: no group commit under fsync=always (%.2f acks/fsync)\n",
                 always.acks_per_fsync);
    return 1;
  }
  if (online.snapshots_completed == 0) {
    std::fprintf(stderr, "FAIL: no snapshot completed during the online phase\n");
    return 1;
  }
  if (online.ratio < 0.5) {
    std::fprintf(stderr, "FAIL: online snapshot ratio %.2f < 0.5\n", online.ratio);
    return 1;
  }
  return 0;
}
