// Figure 8: 8-thread aggregate Lookup-only throughput at 95% occupancy for
// 4-, 8-, and 16-way set-associative tables (optimized cuckoo with TSX
// elision; lookups are optimistic and lock-free in all cases).
//
// Paper numbers: 68.95 / 63.64 / 54.17 Mops — lower associativity reads
// fewer slots (and cache lines) per lookup.
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <int B>
void MeasureLookup(const BenchConfig& config, ReportTable& table) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, B>
      map(CuckooPlusOptions(config.BucketLog2(B)));
  const std::uint64_t target = config.FillTarget(map.SlotCount());
  std::uint64_t inserted = 0;
  for (std::uint64_t id = 0; id < target; ++id) {
    if (map.Insert(KeyForId(id, config.seed), id) == InsertResult::kOk) {
      ++inserted;
    }
  }
  const std::uint64_t per_thread = target / 4;
  LookupRunResult result =
      RunLookupOnly(map, config.threads, per_thread, inserted, config.seed);
  table.Row()
      .Cell(std::to_string(B) + "-way")
      .Cell(map.LoadFactor(), 3)
      .Cell(result.MopsPerSec())
      .Cell(result.HitRate(), 4);
}

int Run(int argc, char** argv) {
  // Out-of-cache default: per-lookup cache-line counts only matter once the
  // bucket arrays exceed the LLC.
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/23);
  PrintBanner(config, "Figure 8",
              "Lookup-only aggregate throughput at 95% occupancy vs set-associativity.",
              "throughput decreases with associativity: 4-way > 8-way > 16-way "
              "(paper: 68.95 / 63.64 / 54.17 Mops)");

  ReportTable table({"associativity", "load_factor", "lookup_mops", "hit_rate"});
  MeasureLookup<4>(config, table);
  MeasureLookup<8>(config, table);
  MeasureLookup<16>(config, table);
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
