// Figure 8: 8-thread aggregate Lookup-only throughput at 95% occupancy for
// 4-, 8-, and 16-way set-associative tables (optimized cuckoo with TSX
// elision; lookups are optimistic and lock-free in all cases).
//
// Paper numbers: 68.95 / 63.64 / 54.17 Mops — lower associativity reads
// fewer slots (and cache lines) per lookup.
//
// --ab (or --smoke) switches to the probe-kernel A/B mode: the same filled
// table is read twice per configuration, once with the scalar tag loop forced
// and once with the dispatched SIMD kernel, across associativities and 4 KB
// vs huge-page backing. --smoke additionally enforces the SIMD speedup floor
// (--min_speedup, default 1.15x) and writes a BENCH_simd.json artifact; on a
// host whose best dispatch level is scalar the floor check is skipped, not
// failed.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/simd_probe.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <int B>
using LookupMap = FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                                DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, B>;

template <int B>
void MeasureLookup(const BenchConfig& config, ReportTable& table) {
  LookupMap<B> map(CuckooPlusOptions(config.BucketLog2(B)));
  const std::uint64_t target = config.FillTarget(map.SlotCount());
  std::uint64_t inserted = 0;
  for (std::uint64_t id = 0; id < target; ++id) {
    if (map.Insert(KeyForId(id, config.seed), id) == InsertResult::kOk) {
      ++inserted;
    }
  }
  const std::uint64_t per_thread = target / 4;
  LookupRunResult result =
      RunLookupOnly(map, config.threads, per_thread, inserted, config.seed);
  table.Row()
      .Cell(std::to_string(B) + "-way")
      .Cell(map.LoadFactor(), 3)
      .Cell(result.MopsPerSec())
      .Cell(result.HitRate(), 4);
}

// ---- probe-kernel / page-size A/B ------------------------------------------

struct AbRow {
  int assoc;
  bool hugepages;
  std::size_t hugepage_bytes;  // actually granted
  double load_factor;
  double scalar_mops;
  double simd_mops;

  double Speedup() const { return scalar_mops == 0.0 ? 0.0 : simd_mops / scalar_mops; }
};

// One filled table, read under both kernels: fill noise (placement, load
// factor) cancels out of the speedup ratio.
template <int B>
AbRow MeasureAb(const BenchConfig& config, bool hugepages) {
  FlatOptions opts = CuckooPlusOptions(config.BucketLog2(B));
  opts.hugepages = hugepages;
  LookupMap<B> map(opts);
  const std::uint64_t target = config.FillTarget(map.SlotCount());
  std::uint64_t inserted = 0;
  for (std::uint64_t id = 0; id < target; ++id) {
    if (map.Insert(KeyForId(id, config.seed), id) == InsertResult::kOk) {
      ++inserted;
    }
  }
  const std::uint64_t per_thread = target / 4;

  AbRow row;
  row.assoc = B;
  row.hugepages = hugepages;
  row.hugepage_bytes = map.Stats().hugepage_bytes >= 0
                           ? static_cast<std::size_t>(map.Stats().hugepage_bytes)
                           : 0;
  row.load_factor = map.LoadFactor();

  const simd::ProbeLevel prev = simd::SetProbeLevelForTesting(simd::ProbeLevel::kScalar);
  // Warm-up pass so both timed arms see an equally hot cache/TLB.
  RunLookupOnly(map, config.threads, per_thread / 4, inserted, config.seed);
  row.scalar_mops =
      RunLookupOnly(map, config.threads, per_thread, inserted, config.seed).MopsPerSec();
  simd::SetProbeLevelForTesting(simd::BestSupportedProbeLevel());
  row.simd_mops =
      RunLookupOnly(map, config.threads, per_thread, inserted, config.seed).MopsPerSec();
  simd::SetProbeLevelForTesting(prev);
  return row;
}

int RunAb(BenchConfig config, const Flags& flags) {
  const bool smoke = flags.GetBool("smoke");
  const std::string out_path = flags.GetString("out", "BENCH_simd.json");
  const double min_speedup = flags.GetDouble("min_speedup", 1.15);
  if (smoke && !flags.Has("slots_log2")) {
    config.slots_log2 = 20;  // ~1M slots: fills in seconds, still beyond L2
  }
  if (smoke && !flags.Has("threads")) {
    config.threads = 1;  // single-reader ratio is the stable smoke signal
  }

  const simd::ProbeLevel best = simd::BestSupportedProbeLevel();
  if (!config.csv) {
    std::printf("== Figure 8 A/B: scalar vs %s probe kernel, 4K vs huge pages ==\n",
                simd::ProbeLevelName(best));
    std::printf("host: slots=2^%zu fill=%.2f threads=%d\n\n", config.slots_log2,
                config.fill, config.threads);
  }

  std::vector<AbRow> rows;
  rows.push_back(MeasureAb<4>(config, false));
  rows.push_back(MeasureAb<8>(config, false));
  rows.push_back(MeasureAb<16>(config, false));
  rows.push_back(MeasureAb<8>(config, true));
  rows.push_back(MeasureAb<16>(config, true));

  ReportTable table({"associativity", "pages", "load_factor", "scalar_mops",
                     "simd_mops", "speedup"});
  for (const AbRow& r : rows) {
    table.Row()
        .Cell(std::to_string(r.assoc) + "-way")
        .Cell(r.hugepage_bytes > 0 ? "huge" : "4k")
        .Cell(r.load_factor, 3)
        .Cell(r.scalar_mops)
        .Cell(r.simd_mops)
        .Cell(r.Speedup(), 3);
  }
  table.Print(std::cout, config.csv);

  double best_speedup = 0.0;
  for (const AbRow& r : rows) {
    if (!r.hugepages && r.Speedup() > best_speedup) {
      best_speedup = r.Speedup();
    }
  }

  std::string json = "{\n  \"bench\": \"simd_ab\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"slots_log2\": %zu, \"threads\": %d, \"fill\": %.2f, "
                  "\"smoke\": %s},\n  \"probe_level\": \"%s\",\n  \"results\": [\n",
                  config.slots_log2, config.threads, config.fill,
                  smoke ? "true" : "false", simd::ProbeLevelName(best));
    json += buf;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"assoc\": %d, \"pages\": \"%s\", \"hugepage_bytes\": %zu, "
                  "\"load_factor\": %.3f, \"scalar_mops\": %.2f, \"simd_mops\": %.2f, "
                  "\"speedup\": %.3f}%s\n",
                  r.assoc, r.hugepage_bytes > 0 ? "huge" : "4k", r.hugepage_bytes,
                  r.load_factor, r.scalar_mops, r.simd_mops, r.Speedup(),
                  i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"best_speedup\": %.3f,\n  \"speedup_floor\": %.2f,\n"
                  "  \"floor_checked\": %s\n}\n",
                  best_speedup, min_speedup,
                  best != simd::ProbeLevel::kScalar ? "true" : "false");
    json += buf;
  }
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (!config.csv) {
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!smoke) {
    return 0;
  }
  if (best == simd::ProbeLevel::kScalar) {
    std::printf("SKIP: no SIMD probe level on this host; speedup floor not checked\n");
    return 0;
  }
  if (best_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: dispatched %s kernel is %.3fx scalar, below the %.2fx floor\n",
                 simd::ProbeLevelName(best), best_speedup, min_speedup);
    return 1;
  }
  std::printf("floor ok: %s kernel %.3fx scalar (>= %.2fx)\n",
              simd::ProbeLevelName(best), best_speedup, min_speedup);
  return 0;
}

int Run(int argc, char** argv) {
  // Out-of-cache default: per-lookup cache-line counts only matter once the
  // bucket arrays exceed the LLC.
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/23);
  Flags flags(argc, argv);
  if (flags.GetBool("ab") || flags.GetBool("smoke")) {
    return RunAb(config, flags);
  }
  PrintBanner(config, "Figure 8",
              "Lookup-only aggregate throughput at 95% occupancy vs set-associativity.",
              "throughput decreases with associativity: 4-way > 8-way > 16-way "
              "(paper: 68.95 / 63.64 / 54.17 Mops)");

  ReportTable table({"associativity", "load_factor", "lookup_mops", "hit_rate"});
  MeasureLookup<4>(config, table);
  MeasureLookup<8>(config, table);
  MeasureLookup<16>(config, table);
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
