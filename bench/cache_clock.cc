// ClockCache characterization: hit rate and throughput of the MemC3-style
// bounded cache as the working set outgrows capacity, under Zipf and uniform
// popularity. This is the cache regime the paper's base table (MemC3 [8])
// was built for.
#include <barrier>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/workload.h"
#include "src/common/timing.h"
#include "src/cuckoo/clock_cache.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/18);
  PrintBanner(config, "ClockCache (MemC3-style eviction)",
              "GET-miss-fill traffic against a bounded cache: hit rate and throughput vs "
              "working-set/capacity ratio and key skew.",
              "Zipf skew keeps hit rates high well past capacity; uniform traffic decays "
              "toward capacity/working-set; eviction cost stays amortized");

  ReportTable table({"key_skew", "ws_over_capacity", "hit_rate", "mops", "evictions"});
  for (double theta : {0.99, 0.8, 0.0}) {
    for (std::uint64_t ratio : {1u, 2u, 4u, 8u}) {
      ClockCache<std::uint64_t, std::uint64_t>::Options o;
      o.bucket_count_log2 = config.BucketLog2(8);
      ClockCache<std::uint64_t, std::uint64_t> cache(o);
      const std::uint64_t key_space = cache.Capacity() * ratio;
      const std::uint64_t ops_per_thread = cache.Capacity();

      std::vector<std::uint64_t> stamps(2, 0);
      std::size_t next_stamp = 0;
      auto stamp = [&]() noexcept {
        if (next_stamp < 2) {
          stamps[next_stamp++] = NowNanos();
        }
      };
      std::barrier<decltype(stamp)> sync(config.threads + 1, stamp);
      std::vector<std::jthread> team;
      for (int t = 0; t < config.threads; ++t) {
        team.emplace_back([&, t] {
          ZipfGenerator zipf(key_space, theta, config.seed + 13 + static_cast<std::uint64_t>(t));
          std::uint64_t v;
          sync.arrive_and_wait();
          for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
            std::uint64_t key = KeyForId(zipf.Next(), config.seed);
            if (!cache.Get(key, &v)) {
              cache.Set(key, key);  // miss-fill from the "backend"
            }
          }
          sync.arrive_and_wait();
        });
      }
      sync.arrive_and_wait();
      sync.arrive_and_wait();
      team.clear();

      auto stats = cache.Stats();
      table.Row()
          .Cell(theta == 0.0 ? "uniform" : ("zipf " + FormatDouble(theta, 2)))
          .Cell(ratio)
          .Cell(stats.HitRate(), 3)
          .Cell(Mops(stats.hits + stats.misses + stats.sets, stamps[1] - stamps[0]))
          .Cell(stats.evictions);
    }
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
