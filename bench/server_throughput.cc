// server_throughput: end-to-end throughput of the epoll KV front end, driven
// by N pipelined client connections over a real socket. Compares the same
// key traffic issued three ways:
//
//   single_get        — one `get <k>\r\n` per key, one round-trip each
//   pipelined_get     — the same single-key gets, `pipeline` per write
//   multi_get         — multi-key `get k1 .. kB\r\n` (batch >= 8), pipelined;
//                       exercises the table's batched prefetching lookup
//
// Emits BENCH_kvserver.json (path via --out) so CI can track the serving
// layer's perf trajectory. --smoke shrinks everything for a seconds-scale
// sanity run.
//
//   ./build/bench/server_throughput [--threads=4] [--keys=20000]
//       [--rounds=200] [--batch=16] [--pipeline=32] [--value_size=100]
//       [--tcp] [--smoke] [--out=BENCH_kvserver.json]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/flags.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"

namespace {

struct ModeResult {
  std::string name;
  std::uint64_t keys_fetched = 0;
  double seconds = 0;
  double keys_per_sec = 0;
};

std::size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::unique_ptr<cuckoo::SocketClient> Connect(const cuckoo::SocketServer& server, bool tcp) {
  auto client = tcp ? std::make_unique<cuckoo::SocketClient>("127.0.0.1", server.tcp_port())
                    : std::make_unique<cuckoo::SocketClient>(server.path());
  return client->connected() ? std::move(client) : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const int threads = static_cast<int>(flags.GetInt("threads", smoke ? 2 : 4));
  const std::uint64_t keys = static_cast<std::uint64_t>(flags.GetInt("keys", smoke ? 2000 : 20000));
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(flags.GetInt("rounds", smoke ? 20 : 200));
  const std::size_t batch = static_cast<std::size_t>(flags.GetInt("batch", 16));
  const std::size_t pipeline = static_cast<std::size_t>(flags.GetInt("pipeline", 32));
  const std::size_t value_size = static_cast<std::size_t>(flags.GetInt("value_size", 100));
  const bool tcp = flags.GetBool("tcp");
  const std::string out_path = flags.GetString("out", "BENCH_kvserver.json");

  cuckoo::KvService service;
  cuckoo::SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_bench_server.sock";
  opts.enable_tcp = tcp;
  opts.event_threads = 2;
  cuckoo::SocketServer server(&service, opts);
  if (!server.Start()) {
    std::fprintf(stderr, "could not start server\n");
    return 1;
  }

  // Load phase: populate the keyspace through the wire.
  {
    auto client = Connect(server, tcp);
    if (!client) {
      std::fprintf(stderr, "load client could not connect\n");
      return 1;
    }
    const std::string value(value_size, 'v');
    std::string chunk;
    std::uint64_t pending = 0;
    for (std::uint64_t k = 0; k < keys; ++k) {
      chunk += "set key" + std::to_string(k) + " 0 0 " + std::to_string(value.size()) +
               "\r\n" + value + "\r\n";
      if (++pending == 512 || k + 1 == keys) {
        if (!client->Send(chunk)) {
          std::fprintf(stderr, "load send failed\n");
          return 1;
        }
        std::string response;
        while (CountOccurrences(response, "STORED\r\n") < pending) {
          if (client->Receive(&response) <= 0) {
            std::fprintf(stderr, "load receive failed\n");
            return 1;
          }
        }
        chunk.clear();
        pending = 0;
      }
    }
  }

  // Each mode fetches the same per-thread key sequence: `rounds` windows of
  // `batch * pipeline` consecutive keys (wrapping the keyspace).
  auto run_mode = [&](const std::string& name, bool multiget,
                      std::size_t requests_per_write) -> ModeResult {
    std::atomic<std::uint64_t> fetched{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> team;
    cuckoo::Stopwatch watch;
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([&, t] {
        auto client = Connect(server, tcp);
        if (!client) {
          failed.store(true);
          return;
        }
        std::uint64_t cursor = static_cast<std::uint64_t>(t) * 7919;
        std::uint64_t got = 0;
        std::string request;
        std::string response;
        for (std::uint64_t r = 0; r < rounds && !failed.load(std::memory_order_relaxed); ++r) {
          request.clear();
          std::size_t expected_end = 0;
          std::size_t expected_values = 0;
          if (multiget) {
            // `pipeline` multi-get commands of `batch` keys each.
            for (std::size_t p = 0; p < pipeline; ++p) {
              request += "get";
              for (std::size_t b = 0; b < batch; ++b) {
                request += " key" + std::to_string(cursor++ % keys);
              }
              request += "\r\n";
            }
            expected_end = pipeline;
            expected_values = batch * pipeline;
          } else {
            // The same keys as single-key gets, `requests_per_write` per
            // flush (1 = strict request/response round-trips).
            for (std::size_t p = 0; p < batch * pipeline; p += requests_per_write) {
              std::string window;
              for (std::size_t q = 0; q < requests_per_write; ++q) {
                window += "get key" + std::to_string(cursor++ % keys) + "\r\n";
              }
              if (!client->Send(window)) {
                failed.store(true);
                return;
              }
              response.clear();
              while (CountOccurrences(response, "END\r\n") < requests_per_write) {
                if (client->Receive(&response) <= 0) {
                  failed.store(true);
                  return;
                }
              }
              got += CountOccurrences(response, "VALUE ");
            }
            continue;
          }
          if (!client->Send(request)) {
            failed.store(true);
            return;
          }
          response.clear();
          while (CountOccurrences(response, "END\r\n") < expected_end) {
            if (client->Receive(&response) <= 0) {
              failed.store(true);
              return;
            }
          }
          got += CountOccurrences(response, "VALUE ");
          (void)expected_values;
        }
        fetched.fetch_add(got, std::memory_order_relaxed);
      });
    }
    for (auto& th : team) {
      th.join();
    }
    ModeResult result;
    result.name = name;
    result.seconds = watch.ElapsedSeconds();
    result.keys_fetched = fetched.load();
    result.keys_per_sec =
        result.seconds > 0 ? static_cast<double>(result.keys_fetched) / result.seconds : 0;
    if (failed.load()) {
      std::fprintf(stderr, "mode %s failed\n", name.c_str());
      result.keys_fetched = 0;
      result.keys_per_sec = 0;
    }
    return result;
  };

  std::vector<ModeResult> results;
  results.push_back(run_mode("single_get", /*multiget=*/false, /*requests_per_write=*/1));
  results.push_back(
      run_mode("pipelined_get", /*multiget=*/false, /*requests_per_write=*/pipeline));
  results.push_back(run_mode("multi_get", /*multiget=*/true, /*requests_per_write=*/0));

  const cuckoo::SocketServer::StatsSnapshot net = server.Stats();
  const cuckoo::MapStatsSnapshot table = service.StoreStats();
  const cuckoo::obs::HistogramSnapshot get_ns =
      service.CommandLatency(cuckoo::RequestType::kGet);
  const cuckoo::obs::HistogramSnapshot set_ns =
      service.CommandLatency(cuckoo::RequestType::kSet);
  server.Stop();

  std::printf("== server_throughput ==\n");
  std::printf("transport=%s threads=%d keys=%llu batch=%zu pipeline=%zu value=%zuB\n",
              tcp ? "tcp" : "unix", threads, static_cast<unsigned long long>(keys), batch,
              pipeline, value_size);
  for (const ModeResult& r : results) {
    std::printf("  %-14s %12.0f keys/s  (%llu keys in %.2fs)\n", r.name.c_str(),
                r.keys_per_sec, static_cast<unsigned long long>(r.keys_fetched), r.seconds);
  }
  std::printf("  get latency p50/p99/p999: %llu/%llu/%llu us (%llu commands)\n",
              static_cast<unsigned long long>(get_ns.P50() / 1000),
              static_cast<unsigned long long>(get_ns.P99() / 1000),
              static_cast<unsigned long long>(get_ns.P999() / 1000),
              static_cast<unsigned long long>(get_ns.Count()));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"server_throughput\",\n");
  std::fprintf(out,
               "  \"config\": {\"transport\": \"%s\", \"threads\": %d, \"keys\": %llu, "
               "\"batch\": %zu, \"pipeline\": %zu, \"value_size\": %zu, \"smoke\": %s},\n",
               tcp ? "tcp" : "unix", threads, static_cast<unsigned long long>(keys), batch,
               pipeline, value_size, smoke ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"keys_fetched\": %llu, \"seconds\": %.4f, "
                 "\"keys_per_sec\": %.1f}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.keys_fetched), r.seconds,
                 r.keys_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"server\": {\"accepted\": %llu, \"bytes_read\": %llu, "
               "\"bytes_written\": %llu, \"backpressure_pauses\": %llu},\n",
               static_cast<unsigned long long>(net.accepted),
               static_cast<unsigned long long>(net.bytes_read),
               static_cast<unsigned long long>(net.bytes_written),
               static_cast<unsigned long long>(net.backpressure_pauses));
  std::fprintf(out,
               "  \"table\": {\"lookups\": %lld, \"read_retries\": %lld, "
               "\"path_searches\": %lld, \"expansions\": %lld},\n",
               static_cast<long long>(table.lookups), static_cast<long long>(table.read_retries),
               static_cast<long long>(table.path_searches),
               static_cast<long long>(table.expansions));
  {
    std::string latency = "  \"latency\": {";
    cuckoo::AppendJsonHistogram("cmd_get_ns", get_ns, &latency);
    latency += ", ";
    cuckoo::AppendJsonHistogram("cmd_set_ns", set_ns, &latency);
    latency += "}\n";
    std::fprintf(out, "%s", latency.c_str());
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity: every mode should have fetched every key it asked for.
  const std::uint64_t expected = static_cast<std::uint64_t>(threads) * rounds * batch * pipeline;
  for (const ModeResult& r : results) {
    if (r.keys_fetched != expected) {
      std::fprintf(stderr, "FAIL: mode %s fetched %llu of %llu keys\n", r.name.c_str(),
                   static_cast<unsigned long long>(r.keys_fetched),
                   static_cast<unsigned long long>(expected));
      return 1;
    }
  }
  return 0;
}
