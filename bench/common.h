// Shared scaffolding for the figure-reproduction bench binaries.
//
// Every binary accepts:
//   --slots_log2=N   table size in log2(slots)     (default 20: ~1M slots)
//   --threads=N      maximum thread count          (default 8)
//   --fill=F         target occupancy              (default 0.95)
//   --seed=S         workload seed                 (default 42)
//   --csv            emit CSV instead of an aligned table
//
// The paper's tables used 2^27 slots (~2 GB); pass --slots_log2=27 to
// replicate that scale. Defaults are sized so the full bench suite finishes
// in minutes on a small host.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/benchkit/flags.h"
#include "src/benchkit/report.h"
#include "src/benchkit/runner.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/types.h"
#include "src/htm/rtm.h"
#include "src/obs/histogram.h"

namespace cuckoo {

struct BenchConfig {
  std::size_t slots_log2 = 20;
  int threads = 8;
  double fill = 0.95;
  std::uint64_t seed = 42;
  bool csv = false;

  static BenchConfig FromFlags(int argc, char** argv, std::int64_t default_slots_log2 = 20) {
    Flags flags(argc, argv);
    BenchConfig config;
    config.slots_log2 = static_cast<std::size_t>(flags.GetInt("slots_log2", default_slots_log2));
    config.threads = static_cast<int>(flags.GetInt("threads", 8));
    config.fill = flags.GetDouble("fill", 0.95);
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    config.csv = flags.GetBool("csv");
    return config;
  }

  // log2 of the bucket count for a B-way table with 2^slots_log2 slots.
  std::size_t BucketLog2(int b) const {
    std::size_t log2 = slots_log2;
    while ((std::size_t{1} << log2) * static_cast<std::size_t>(b) >
           (std::size_t{1} << slots_log2)) {
      --log2;
    }
    return log2;
  }

  std::uint64_t FillTarget(std::size_t slot_count) const {
    return static_cast<std::uint64_t>(fill * static_cast<double>(slot_count));
  }
};

// Prints the standard figure banner: what the paper measured and what shape
// to expect from this reproduction.
inline void PrintBanner(const BenchConfig& config, const char* figure, const char* description,
                        const char* paper_shape) {
  if (config.csv) {
    return;
  }
  std::printf("== %s ==\n%s\n", figure, description);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("host: %d hw thread(s); rtm %s; slots=2^%zu; fill=%.2f; threads<=%d\n\n",
              NumOnlineCpus(), RtmIsUsable() ? "usable" : "emulated", config.slots_log2,
              config.fill, config.threads);
}

// The paper's factor-analysis variants, as reusable FlatOptions.
inline FlatOptions MemC3Options(std::size_t bucket_log2) {
  FlatOptions o;
  o.bucket_count_log2 = bucket_log2;
  o.search_mode = SearchMode::kDfs;
  o.lock_after_discovery = false;
  o.prefetch = false;
  return o;
}

inline FlatOptions LockLaterOptions(std::size_t bucket_log2) {
  FlatOptions o = MemC3Options(bucket_log2);
  o.lock_after_discovery = true;
  return o;
}

inline FlatOptions BfsOptions(std::size_t bucket_log2) {
  FlatOptions o = LockLaterOptions(bucket_log2);
  o.search_mode = SearchMode::kBfs;
  return o;
}

inline FlatOptions CuckooPlusOptions(std::size_t bucket_log2) {
  FlatOptions o = BfsOptions(bucket_log2);
  o.prefetch = true;
  return o;
}

// `"name": {"count": N, "mean_ns": X, "p50_ns": ..., "max_ns": ...}` —
// one JSON member per latency histogram, for the BENCH_*.json artifacts.
inline void AppendJsonHistogram(const char* name, const obs::HistogramSnapshot& h,
                                std::string* out) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"count\": %llu, \"mean_ns\": %.1f, \"p50_ns\": %llu, "
                "\"p90_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu, \"max_ns\": %llu}",
                name, static_cast<unsigned long long>(h.Count()), h.Mean(),
                static_cast<unsigned long long>(h.P50()),
                static_cast<unsigned long long>(h.P90()),
                static_cast<unsigned long long>(h.P99()),
                static_cast<unsigned long long>(h.P999()),
                static_cast<unsigned long long>(h.Max()));
  out->append(buf);
}

}  // namespace cuckoo

#endif  // BENCH_COMMON_H_
