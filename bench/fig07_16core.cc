// Figure 7: scaling to 16 cores without TSX — cuckoo+ with fine-grained
// locking vs. the TBB-style concurrent chaining map, at 100%/50%/10% insert.
//
// Paper shape (dual-socket 16-core Xeon): cuckoo+ keeps scaling for
// write-heavy workloads where TBB only scales when reads dominate; neither
// is perfectly linear past 8 cores (QPI traffic).
//
// Host note: this reproduction machine exposes a single hardware thread, so
// thread counts beyond 1 measure oversubscription behaviour (the relative
// ordering of the two tables is still meaningful; the slope is not).
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  config.threads = static_cast<int>(flags.GetInt("threads", 16));
  PrintBanner(config, "Figure 7",
              "Throughput vs cores (1-16), no HTM: cuckoo+ fine-grained vs TBB-style.",
              "cuckoo+ scales for write-heavy workloads; TBB-style scales only when "
              "reads dominate and trails everywhere");

  const std::size_t bucket_log2 = config.BucketLog2(8);
  const std::uint64_t total = config.FillTarget((std::size_t{1} << bucket_log2) * 8);

  ReportTable table({"workload", "table", "threads", "overall_mops"});
  for (double fraction : {1.0, 0.5, 0.1}) {
    for (int threads = 1; threads <= config.threads; threads *= 2) {
      {
        CuckooMap<std::uint64_t, std::uint64_t>::Options o;
        o.initial_bucket_count_log2 = bucket_log2;
        o.auto_expand = false;
        CuckooMap<std::uint64_t, std::uint64_t> map(o);
        RunOptions ro;
        ro.threads = threads;
        ro.insert_fraction = fraction;
        ro.total_inserts = total;
        ro.seed = config.seed;
        table.Row()
            .Cell(FormatDouble(fraction * 100, 0) + "% insert")
            .Cell("cuckoo+ fine-grained")
            .Cell(threads)
            .Cell(RunMixedFill(map, ro).OverallMops());
      }
      {
        ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(std::size_t{1} << bucket_log2);
        RunOptions ro;
        ro.threads = threads;
        ro.insert_fraction = fraction;
        ro.total_inserts = total;
        ro.seed = config.seed;
        table.Row()
            .Cell(FormatDouble(fraction * 100, 0) + "% insert")
            .Cell("TBB-style")
            .Cell(threads)
            .Cell(RunMixedFill(map, ro).OverallMops());
      }
    }
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
