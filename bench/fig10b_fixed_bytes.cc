// Figure 10b: throughput vs. value size with a *fixed table byte budget*
// (paper: 4 GB; default here 64 MB, scalable via --table_mb), comparing the
// tuned-TSX coarse-lock table against fine-grained locking.
//
// Paper shape: TSX elision beats fine-grained locking at small values, but
// large values blow past the transactional write-set and TSX falls behind by
// ~1 KB ("large values increase the amount of memory touched during the
// transaction and therefore increase the odds of a transactional abort").
// With emulated RTM the capacity effect is modeled by the abort injector, so
// the crossover is visible only with real TSX hardware; both series still
// show the bandwidth-driven decline.
#include <array>
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

// Largest bucket_count_log2 such that an 8-way table with (8+N)-byte pairs
// fits in the byte budget.
std::size_t BucketLog2ForBudget(std::size_t budget_bytes, std::size_t pair_bytes) {
  std::size_t log2 = 4;
  while ((std::size_t{1} << (log2 + 1)) * 8 * (pair_bytes + 1) <= budget_bytes) {
    ++log2;
  }
  return log2;
}

template <std::size_t N>
void MeasureFixedBudget(const BenchConfig& config, std::size_t budget_bytes,
                        ReportTable& table) {
  using Value = std::array<char, N>;
  const std::size_t bucket_log2 = BucketLog2ForBudget(budget_bytes, 8 + N);

  // Fresh map per pass: a fill run consumes the key space.
  for (int threads : {config.threads, 1}) {
    FlatCuckooMap<std::uint64_t, Value, TunedElided<SpinLock>, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(bucket_log2));
    RunOptions ro;
    ro.threads = threads;
    ro.insert_fraction = 1.0;
    ro.total_inserts = config.FillTarget(map.SlotCount());
    ro.seed = config.seed;
    table.Row()
        .Cell(static_cast<std::uint64_t>(N))
        .Cell("cuckoo+ TSX")
        .Cell(threads)
        .Cell(RunMixedFill(map, ro).OverallMops());
  }
  {
    typename CuckooMap<std::uint64_t, Value>::Options o;
    o.initial_bucket_count_log2 = bucket_log2;
    o.auto_expand = false;
    CuckooMap<std::uint64_t, Value> map(o);
    RunOptions ro;
    ro.threads = config.threads;
    ro.insert_fraction = 1.0;
    ro.total_inserts = config.FillTarget(map.SlotCount());
    ro.seed = config.seed;
    table.Row()
        .Cell(static_cast<std::uint64_t>(N))
        .Cell("cuckoo+ fine-grained")
        .Cell(config.threads)
        .Cell(RunMixedFill(map, ro).OverallMops());
  }
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const std::size_t budget_bytes =
      static_cast<std::size_t>(flags.GetInt("table_mb", 64)) * 1048576;
  PrintBanner(config, "Figure 10b",
              "Throughput vs value size at a fixed table byte budget: TSX coarse lock vs "
              "fine-grained locking.",
              "both decline with value size; on real TSX hardware elision wins at small "
              "values and loses by ~1 KB (capacity aborts)");

  ReportTable table({"value_bytes", "config", "threads", "mops"});
  MeasureFixedBudget<8>(config, budget_bytes, table);
  MeasureFixedBudget<64>(config, budget_bytes, table);
  MeasureFixedBudget<256>(config, budget_bytes, table);
  MeasureFixedBudget<512>(config, budget_bytes, table);
  MeasureFixedBudget<1016>(config, budget_bytes, table);
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
