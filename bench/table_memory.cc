// §6.2's memory-efficiency comparison (the "2 GB vs TBB's 6 GB" text and the
// Figure 1 caption "using substantially less memory for small key-value
// items"): bytes per 16-byte key-value pair for every table design at the
// same key count, plus an RSS cross-check of the accounting.
#include <cstdint>
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "src/baselines/chaining_map.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/benchkit/memory.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Memory table (§6.2)",
              "Heap bytes per 16-byte key-value pair at equal key count.",
              "cuckoo+ ~2-3x smaller than TBB-style chaining; dense pays its 0.5 load "
              "cap; chaining pays per-node pointers");

  const std::size_t bucket_log2 = config.BucketLog2(8);
  const std::uint64_t keys = config.FillTarget((std::size_t{1} << bucket_log2) * 8);

  ReportTable table({"table", "keys", "heap_mb", "bytes_per_pair", "rss_delta_mb"});

  auto measure = [&](const char* name, auto make_map) {
    std::size_t rss_before = CurrentRssBytes();
    auto map = make_map();
    for (std::uint64_t id = 0; id < keys; ++id) {
      map->Insert(KeyForId(id, config.seed), id);
    }
    std::size_t rss_after = CurrentRssBytes();
    double rss_delta_mb =
        rss_after > rss_before ? static_cast<double>(rss_after - rss_before) / 1048576.0 : 0.0;
    table.Row()
        .Cell(name)
        .Cell(static_cast<std::uint64_t>(map->Size()))
        .Cell(static_cast<double>(map->HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map->HeapBytes()) / static_cast<double>(map->Size()), 1)
        .Cell(rss_delta_mb, 1);
  };

  measure("cuckoo+ (8-way)", [&] {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = bucket_log2;
    o.auto_expand = false;
    return std::make_unique<CuckooMap<std::uint64_t, std::uint64_t>>(o);
  });
  measure("TBB-style chaining", [&] {
    return std::make_unique<ConcurrentChainingMap<std::uint64_t, std::uint64_t>>(
        std::size_t{1} << bucket_log2);
  });
  measure("unordered_map-style chaining", [&] {
    return std::make_unique<ChainingMap<std::uint64_t, std::uint64_t>>();
  });
  measure("dense_hash_map-style", [&] {
    return std::make_unique<DenseMap<std::uint64_t, std::uint64_t>>();
  });

  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
