// YCSB-style workload suite over cuckoo+ — the standard KV-store benchmark
// mixes, run against the fine-grained table with Zipf(0.99) key popularity:
//
//   A  update-heavy    50% read / 50% update
//   B  read-heavy      95% read /  5% update
//   C  read-only      100% read
//   D  read-latest     95% read /  5% insert, reads skewed to recent inserts
//   F  read-modify-write  50% read / 50% RMW (UpsertWith)
//
// Reports throughput plus p50/p99 operation latency from the benchkit
// log-linear histogram. (YCSB E is scan-based; cuckoo tables do not support
// ordered scans — noted in EXPERIMENTS.md.)
#include <atomic>
#include <barrier>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/latency.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

struct WorkloadSpec {
  const char* name;
  double read_fraction;
  double update_fraction;  // in-place overwrite
  double insert_fraction;  // fresh keys (workload D)
  double rmw_fraction;     // read-modify-write (workload F)
};

constexpr WorkloadSpec kWorkloads[] = {
    {"A (50r/50u)", 0.50, 0.50, 0.0, 0.0},
    {"B (95r/5u)", 0.95, 0.05, 0.0, 0.0},
    {"C (100r)", 1.00, 0.00, 0.0, 0.0},
    {"D (95r/5i latest)", 0.95, 0.00, 0.05, 0.0},
    {"F (50r/50rmw)", 0.50, 0.00, 0.0, 0.50},
};

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "YCSB-style suite",
              "Standard KV benchmark mixes on cuckoo+ fine-grained, Zipf(0.99) keys, with "
              "operation-latency percentiles.",
              "read-heavy mixes run fastest (lock-free reads); update/RMW mixes pay "
              "bucket-lock costs; shapes mirror Figure 6's insert-fraction trend");

  const std::uint64_t resident =
      config.FillTarget(std::size_t{1} << config.slots_log2) / 2;
  const std::uint64_t ops_per_thread = resident / 2;

  ReportTable table({"workload", "threads", "mops", "p50_ns", "p99_ns", "hit_rate"});
  for (const WorkloadSpec& spec : kWorkloads) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = config.BucketLog2(8);
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    Prefill(map, resident, config.seed);

    LatencyHistogram latency;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> inserted_watermark{resident};
    std::vector<std::uint64_t> start_stop(2, 0);
    std::size_t next_stamp = 0;
    auto stamp = [&]() noexcept {
      if (next_stamp < 2) {
        start_stop[next_stamp++] = NowNanos();
      }
    };
    std::barrier<decltype(stamp)> sync(config.threads + 1, stamp);

    std::vector<std::jthread> team;
    for (int t = 0; t < config.threads; ++t) {
      team.emplace_back([&, t] {
        Xorshift128Plus rng(Mix64(config.seed + 100 + static_cast<std::uint64_t>(t)));
        ZipfGenerator zipf(resident, 0.99, config.seed + 7 + static_cast<std::uint64_t>(t));
        std::uint64_t local_hits = 0;
        std::uint64_t v;
        std::uint64_t next_insert =
            resident + static_cast<std::uint64_t>(t);  // strided fresh ids
        sync.arrive_and_wait();
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          double dice = rng.NextDouble();
          std::uint64_t began = NowNanos();
          if (dice < spec.read_fraction) {
            std::uint64_t id;
            if (spec.insert_fraction > 0) {
              // read-latest: bias toward the most recent inserts.
              std::uint64_t mark = inserted_watermark.load(std::memory_order_relaxed);
              std::uint64_t back = zipf.Next();
              id = back >= mark ? 0 : mark - 1 - back;
            } else {
              id = zipf.Next();
            }
            local_hits += map.Find(KeyForId(id, config.seed), &v) ? 1 : 0;
          } else if (dice < spec.read_fraction + spec.update_fraction) {
            map.Update(KeyForId(zipf.Next(), config.seed), i);
          } else if (dice < spec.read_fraction + spec.update_fraction + spec.insert_fraction) {
            map.Insert(KeyForId(next_insert, config.seed), i);
            next_insert += static_cast<std::uint64_t>(config.threads);
            inserted_watermark.fetch_add(1, std::memory_order_relaxed);
          } else {
            map.UpsertWith(KeyForId(zipf.Next(), config.seed),
                           [](std::uint64_t& value) { ++value; }, 0);
          }
          latency.Record(NowNanos() - began);
        }
        hits.fetch_add(local_hits, std::memory_order_relaxed);
        sync.arrive_and_wait();
      });
    }
    sync.arrive_and_wait();
    sync.arrive_and_wait();
    team.clear();

    const std::uint64_t total_ops =
        ops_per_thread * static_cast<std::uint64_t>(config.threads);
    const std::uint64_t reads = hits.load();
    double read_ops = static_cast<double>(total_ops) * spec.read_fraction;
    table.Row()
        .Cell(spec.name)
        .Cell(config.threads)
        .Cell(Mops(total_ops, start_stop[1] - start_stop[0]))
        .Cell(latency.PercentileNanos(0.50))
        .Cell(latency.PercentileNanos(0.99))
        .Cell(read_ops > 0 ? static_cast<double>(reads) / read_ops : 0.0, 3);
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
