// Figure 5b: 8-thread Insert factor analysis, with locking — both cumulative
// orders from the paper:
//
//   order A (elision first): cuckoo -> +TSX-glibc -> +TSX* -> +lock later
//                            -> +BFS w/ prefetch
//   order B (algorithms first): cuckoo -> +lock later -> +BFS w/ prefetch
//                               -> +TSX-glibc -> +TSX*
//
// Paper numbers (overall Mops, top/bottom plots): A: 1.38, 1.84, 7.94,
// 22.11, 29.21; B: 1.38, 3.72, 3.67, 17.72, 29.21. The headline: neither
// fine-grained-friendly algorithms nor good elision alone exceeds ~8 Mops;
// together they reach ~30.
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <typename LockT>
using Map = FlatCuckooMap<std::uint64_t, std::uint64_t, LockT, DefaultHash<std::uint64_t>,
                          std::equal_to<std::uint64_t>, 8>;

struct Measured {
  double overall;
  double mid;   // 0.75-0.90
  double high;  // 0.90-0.95
};

template <typename LockT>
Measured Measure(const BenchConfig& config, const FlatOptions& opts) {
  Map<LockT> map(opts);
  RunOptions ro;
  ro.threads = config.threads;
  ro.insert_fraction = 1.0;
  ro.total_inserts = config.FillTarget(map.SlotCount());
  ro.seed = config.seed;
  ro.segment_boundaries = {0.75 / config.fill, 0.90 / config.fill, 1.0};
  RunResult result = RunMixedFill(map, ro);
  return Measured{result.OverallMops(), result.segments[1].MopsPerSec(),
                  result.segments[2].MopsPerSec()};
}

void AddRow(ReportTable& table, const char* order, const char* name, const Measured& m) {
  table.Row().Cell(order).Cell(name).Cell(m.overall).Cell(m.mid).Cell(m.high);
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 5b",
              "8-thread insert-only factor analysis; cumulative optimizations in both orders.",
              "lock-elision alone and algorithm changes alone each give <8 Mops; combined "
              "they multiply (paper: 1.4 -> 29.2 Mops). On a 1-core host absolute numbers "
              "compress but the ordering of variants persists.");

  const std::size_t bucket_log2 = config.BucketLog2(8);
  FlatOptions memc3 = MemC3Options(bucket_log2);
  FlatOptions lock_later = LockLaterOptions(bucket_log2);
  FlatOptions full = CuckooPlusOptions(bucket_log2);

  ReportTable table({"order", "variant", "overall_mops", "load_0.75-0.9", "load_0.9-0.95"});

  // Order A: elision first, algorithmic changes after.
  AddRow(table, "A", "cuckoo (global mutex)", Measure<std::mutex>(config, memc3));
  AddRow(table, "A", "+TSX-glibc", Measure<GlibcElided<SpinLock>>(config, memc3));
  AddRow(table, "A", "+TSX*", Measure<TunedElided<SpinLock>>(config, memc3));
  AddRow(table, "A", "+lock later", Measure<TunedElided<SpinLock>>(config, lock_later));
  AddRow(table, "A", "+BFS w/ prefetch", Measure<TunedElided<SpinLock>>(config, full));

  // Order B: algorithmic changes first, elision after.
  AddRow(table, "B", "cuckoo (global mutex)", Measure<std::mutex>(config, memc3));
  AddRow(table, "B", "+lock later", Measure<std::mutex>(config, lock_later));
  AddRow(table, "B", "+BFS w/ prefetch", Measure<std::mutex>(config, full));
  AddRow(table, "B", "+TSX-glibc", Measure<GlibcElided<SpinLock>>(config, full));
  AddRow(table, "B", "+TSX*", Measure<TunedElided<SpinLock>>(config, full));

  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
