// Steady-state churn (§6.3: "Others may issue inserts and deletes to a table
// at high occupancy, thus caring more about 90%-95% insert throughput"):
// fill each cuckoo configuration to ~95%, then measure erase+insert pairs at
// constant occupancy across several thread counts.
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/benchkit/workload.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

#include <barrier>
#include <thread>
#include <vector>

namespace cuckoo {
namespace {

// Each thread owns a disjoint rotating window of keys: erase its oldest,
// insert a fresh one, repeat. Occupancy stays constant at the fill level.
double MeasureChurn(CuckooMap<std::uint64_t, std::uint64_t>& map, int threads,
                    std::uint64_t resident, std::uint64_t rounds_per_thread,
                    std::uint64_t seed) {
  std::vector<std::uint64_t> stamps(2, 0);
  std::size_t next_stamp = 0;
  auto stamp_phase = [&stamps, &next_stamp]() noexcept {
    if (next_stamp < stamps.size()) {
      stamps[next_stamp++] = NowNanos();
    }
  };
  std::barrier<decltype(stamp_phase)> sync(threads + 1, stamp_phase);
  std::vector<std::jthread> team;
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      // This thread's keys are ids congruent to t (mod threads).
      std::uint64_t oldest = static_cast<std::uint64_t>(t);
      std::uint64_t next = resident + static_cast<std::uint64_t>(t);
      const std::uint64_t stride = static_cast<std::uint64_t>(threads);
      sync.arrive_and_wait();
      for (std::uint64_t i = 0; i < rounds_per_thread; ++i) {
        map.Erase(KeyForId(oldest, seed));
        map.Insert(KeyForId(next, seed), next);
        oldest += stride;
        next += stride;
      }
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  sync.arrive_and_wait();
  team.clear();
  // 2 ops (erase + insert) per round.
  return Mops(2 * rounds_per_thread * static_cast<std::uint64_t>(threads),
              stamps[1] - stamps[0]);
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Churn (steady state at 95%)",
              "Erase+insert pairs at constant ~95% occupancy vs thread count.",
              "high-occupancy replace throughput tracks the 0.9-0.95 insert band of "
              "Figures 5/6; fine-grained locking keeps churn concurrent");

  ReportTable table({"threads", "churn_mops", "load_factor", "mean_path"});
  for (int threads = 1; threads <= config.threads; threads *= 2) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = config.BucketLog2(8);
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    const std::uint64_t resident = config.FillTarget(map.SlotCount());
    Prefill(map, resident, config.seed);
    map.ResetStats();
    const std::uint64_t rounds =
        resident / (4 * static_cast<std::uint64_t>(threads));  // ~25% turnover
    double mops = MeasureChurn(map, threads, resident, rounds, config.seed);
    table.Row()
        .Cell(threads)
        .Cell(mops)
        .Cell(map.LoadFactor(), 3)
        .Cell(map.Stats().MeanPathLength(), 3);
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
