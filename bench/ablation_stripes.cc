// Ablation (DESIGN.md §6): lock-stripe count. The paper uses 2048 stripes and
// notes "1K-8K entries" keeps locking fine-grained and low-overhead; too few
// stripes serialize unrelated buckets, too many waste cache.
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Ablation: stripe count",
              "Insert + mixed throughput of cuckoo+ fine-grained vs lock-stripe table size.",
              "throughput plateaus in the 1K-8K range; very small stripe tables contend");

  ReportTable table({"stripes", "insert_mops", "mixed50_mops", "stripe_mb"});
  for (std::size_t stripes : {16u, 64u, 256u, 1024u, 2048u, 8192u, 32768u}) {
    double insert_mops = 0;
    double mixed_mops = 0;
    for (double fraction : {1.0, 0.5}) {
      CuckooMap<std::uint64_t, std::uint64_t>::Options o;
      o.initial_bucket_count_log2 = config.BucketLog2(8);
      o.auto_expand = false;
      o.stripe_count = stripes;
      CuckooMap<std::uint64_t, std::uint64_t> map(o);
      RunOptions ro;
      ro.threads = config.threads;
      ro.insert_fraction = fraction;
      ro.total_inserts = config.FillTarget(map.SlotCount());
      ro.seed = config.seed;
      double mops = RunMixedFill(map, ro).OverallMops();
      if (fraction == 1.0) {
        insert_mops = mops;
      } else {
        mixed_mops = mops;
      }
    }
    table.Row()
        .Cell(static_cast<std::uint64_t>(stripes))
        .Cell(insert_mops)
        .Cell(mixed_mops)
        .Cell(static_cast<double>(stripes * kCacheLineSize) / 1048576.0, 3);
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
