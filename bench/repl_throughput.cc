// repl_throughput: WAL-shipping replication benchmark for the KV server.
//
// Three experiments over a real primary+replica pair wired the same way
// server_main wires them (ReplicationHub as the durability bridge, TCP
// `replicate` upgrade, ReplicaClient applying frames through the local WAL):
//
//   1. ack sweep — the same SET workload through the primary's unix socket
//      at each ack level with one live replica attached:
//        none      — client acks don't wait for the local fsync or the
//                    replica; the upper bound.
//        async     — acks wait for local durability only; the replica tails
//                    the stream in the background (the deployment default).
//        semi-sync — every ack additionally waits for the replica's ACK of
//                    that LSN; the price of zero acked-write loss on
//                    primary failure. Reports sets/s + client-side set
//                    latency, and how long the replica took to fully
//                    converge after the run.
//
//   2. replica GET scaling — closed-loop GET threads against the replica's
//      own socket while it streams; read replicas exist to offload reads,
//      so this is the number that justifies them.
//
//   3. lag under load — a sustained async write burst with a sampler
//      recording the hub's replica lag (in LSNs) every few ms; reports the
//      lag distribution and verifies it drains to zero once the writer
//      stops.
//
// Emits BENCH_repl.json (path via --out). --smoke shrinks everything to a
// seconds-scale CI sanity run; the structural gates (replica converges at
// every ack level, semi-sync never timed out, replica GETs serve correct
// bytes, lag drains) are always on and exit non-zero on violation.
//
//   ./build/bench/repl_throughput [--ops=20000] [--keys=2000]
//       [--value_size=64] [--out=BENCH_repl.json] [--smoke]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/flags.h"
#include "src/common/file_util.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/obs/histogram.h"
#include "src/persist/durability.h"
#include "src/repl/replica_client.h"
#include "src/repl/replication.h"
#include "src/repl/replication_hub.h"

namespace {

std::string MakeTempDir() {
  std::string tmpl = "/tmp/cuckoo_repl_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  return made != nullptr ? std::string(made) : std::string();
}

void RemoveTree(const std::string& dir) {
  for (const std::string& name : cuckoo::ListFilesWithPrefix(dir, "")) {
    cuckoo::RemoveFile(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

std::string Drive(cuckoo::KvService* service, const std::string& input) {
  auto conn = service->Connect();
  std::string out;
  conn.Drive(input, &out);
  return out;
}

// "STAT <name> <value>\r\n" lines (hub/replica stats hooks); -1 if absent.
long long StatValue(const std::string& stats, const std::string& name) {
  const std::string needle = "STAT " + name + " ";
  const std::size_t pos = stats.find(needle);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(stats.c_str() + pos + needle.size());
}

// A primary wired exactly like server_main: hub installed as the WAL's
// replication bridge before Start(), `replicate` upgrades handed to
// hub->Adopt, unix socket for load clients + ephemeral TCP for replicas.
struct PrimaryHarness {
  std::string dir;
  cuckoo::KvService service;
  cuckoo::persist::DurabilityManager durability{&service};
  std::unique_ptr<cuckoo::repl::ReplicationHub> hub;
  std::unique_ptr<cuckoo::SocketServer> server;

  bool Start(const std::string& sock_path, cuckoo::repl::AckLevel ack) {
    dir = MakeTempDir();
    if (dir.empty()) {
      return false;
    }
    cuckoo::repl::ReplicationHubOptions h;
    h.service = &service;
    h.durability = &durability;
    h.wal_dir = dir;
    h.ack = ack;
    h.semi_sync_timeout_ms = 5000;
    h.heartbeat_ms = 100;
    hub = std::make_unique<cuckoo::repl::ReplicationHub>(h);
    durability.SetReplicationBridge(hub.get());
    cuckoo::persist::DurabilityOptions d;
    d.dir = dir;
    d.fsync_policy = cuckoo::persist::FsyncPolicy::kEverySec;
    std::string error;
    if (!durability.Start(d, &error)) {
      std::fprintf(stderr, "primary recovery failed: %s\n", error.c_str());
      return false;
    }
    service.SetReplicationUpgradeEnabled(true);
    cuckoo::SocketServer::Options opts;
    opts.unix_path = sock_path;
    opts.enable_tcp = true;
    opts.tcp_port = 0;
    opts.event_threads = 2;
    cuckoo::repl::ReplicationHub* hub_ptr = hub.get();
    opts.replication_handoff = [hub_ptr](int fd, std::uint64_t start_lsn,
                                         std::string leftover) {
      hub_ptr->Adopt(fd, start_lsn, std::move(leftover));
    };
    server = std::make_unique<cuckoo::SocketServer>(&service, opts);
    return server->Start();
  }

  ~PrimaryHarness() {
    if (server) {
      server->Stop();
    }
    durability.Stop();
    if (hub) {
      hub->Stop();
    }
    if (!dir.empty()) {
      RemoveTree(dir);
    }
  }
};

// A read replica: read-only service, its own WAL, a ReplicaClient following
// the primary's TCP port, and a unix socket serving GETs.
struct ReplicaHarness {
  std::string dir;
  cuckoo::KvService service;
  cuckoo::persist::DurabilityManager durability{&service};
  std::unique_ptr<cuckoo::repl::ReplicaClient> replica;
  std::unique_ptr<cuckoo::SocketServer> server;

  bool Start(const std::string& sock_path, std::uint16_t primary_port) {
    dir = MakeTempDir();
    if (dir.empty()) {
      return false;
    }
    service.SetReadOnly(true, "127.0.0.1:" + std::to_string(primary_port));
    cuckoo::persist::DurabilityOptions d;
    d.dir = dir;
    d.fsync_policy = cuckoo::persist::FsyncPolicy::kEverySec;
    std::string error;
    if (!durability.Start(d, &error)) {
      std::fprintf(stderr, "replica recovery failed: %s\n", error.c_str());
      return false;
    }
    cuckoo::repl::ReplicaClientOptions c;
    c.host = "127.0.0.1";
    c.port = primary_port;
    c.durability = &durability;
    c.wal_dir = dir;
    replica = std::make_unique<cuckoo::repl::ReplicaClient>(c);
    cuckoo::SocketServer::Options opts;
    opts.unix_path = sock_path;
    opts.enable_tcp = false;
    opts.event_threads = 2;
    server = std::make_unique<cuckoo::SocketServer>(&service, opts);
    if (!server->Start()) {
      return false;
    }
    replica->Start();
    return true;
  }

  ~ReplicaHarness() {
    if (replica) {
      replica->Stop();
    }
    if (server) {
      server->Stop();
    }
    durability.Stop();
    if (!dir.empty()) {
      RemoveTree(dir);
    }
  }
};

std::string SetCmd(const std::string& key, const std::string& value) {
  return "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value + "\r\n";
}

// True once the replica applied `key` and the hub reports zero lag.
bool WaitConverged(PrimaryHarness* primary, ReplicaHarness* replica,
                   const std::string& key, const std::string& value,
                   double* converge_ms) {
  const std::string want = "VALUE " + key + " 0 " + std::to_string(value.size());
  cuckoo::Stopwatch watch;
  for (int spin = 0; spin < 3000; ++spin) {
    if (Drive(&replica->service, "get " + key + "\r\n").find(want) !=
            std::string::npos &&
        primary->hub->LagLsns() == 0) {
      if (converge_ms != nullptr) {
        *converge_ms = watch.ElapsedSeconds() * 1e3;
      }
      return true;
    }
    ::usleep(10 * 1000);
  }
  std::fprintf(stderr, "replica never converged on %s\n", key.c_str());
  return false;
}

struct AckResult {
  const char* name = "";
  double sets_per_sec = 0;
  double converge_ms = 0;
  cuckoo::obs::HistogramSnapshot set_latency_ns;
  long long semi_sync_timeouts = 0;
};

// `ops` SETs over `keys` keys through the primary's unix socket with one
// live replica attached; convergence is timed from the moment the writer
// finishes.
bool RunAckLevel(cuckoo::repl::AckLevel ack, const char* name, std::uint64_t ops,
                 std::uint64_t keys, const std::string& value, AckResult* out) {
  const std::string psock = "/tmp/cuckoo_repl_bench_p.sock";
  const std::string rsock = "/tmp/cuckoo_repl_bench_r.sock";
  PrimaryHarness primary;
  if (!primary.Start(psock, ack)) {
    return false;
  }
  ReplicaHarness replica;
  if (!replica.Start(rsock, primary.server->tcp_port())) {
    return false;
  }
  // Don't let semi-sync measure the connect handshake: wait for attachment.
  for (int spin = 0; spin < 1000 && primary.hub->ConnectedReplicas() == 0; ++spin) {
    ::usleep(5 * 1000);
  }
  if (primary.hub->ConnectedReplicas() != 1) {
    std::fprintf(stderr, "%s: replica never attached\n", name);
    return false;
  }

  cuckoo::SocketClient client(psock);
  if (!client.connected()) {
    return false;
  }
  cuckoo::obs::Histogram latency;
  cuckoo::Stopwatch watch;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::string key = "key" + std::to_string(i % keys);
    const auto t0 = std::chrono::steady_clock::now();
    if (client.RoundTrip(SetCmd(key, value), "\r\n") != "STORED\r\n") {
      std::fprintf(stderr, "%s: set refused at op %llu\n", name,
                   static_cast<unsigned long long>(i));
      return false;
    }
    latency.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  const double seconds = watch.ElapsedSeconds();

  out->name = name;
  out->sets_per_sec = seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  out->set_latency_ns = latency.Snapshot();
  if (client.RoundTrip(SetCmd("sentinel", value), "\r\n") != "STORED\r\n" ||
      !WaitConverged(&primary, &replica, "sentinel", value, &out->converge_ms)) {
    return false;
  }
  std::string stats;
  primary.hub->AppendStats(&stats);
  out->semi_sync_timeouts = StatValue(stats, "repl_semi_sync_timeouts");
  return true;
}

struct GetScalePoint {
  int threads = 0;
  double gets_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::uint64_t ops =
      static_cast<std::uint64_t>(flags.GetInt("ops", smoke ? 2000 : 20000));
  const std::uint64_t keys =
      static_cast<std::uint64_t>(flags.GetInt("keys", smoke ? 400 : 2000));
  const std::size_t value_size =
      static_cast<std::size_t>(flags.GetInt("value_size", 64));
  const std::string out_path = flags.GetString("out", "BENCH_repl.json");
  const std::string value(value_size, 'r');
  const std::string psock = "/tmp/cuckoo_repl_bench_p.sock";
  const std::string rsock = "/tmp/cuckoo_repl_bench_r.sock";

  // ---- 1. ack sweep: none / async / semi-sync with one live replica ------
  AckResult ack_results[3];
  const struct {
    cuckoo::repl::AckLevel level;
    const char* name;
  } ack_cases[] = {
      {cuckoo::repl::AckLevel::kNone, "none"},
      {cuckoo::repl::AckLevel::kAsync, "async"},
      {cuckoo::repl::AckLevel::kSemiSync, "semi-sync"},
  };
  for (int i = 0; i < 3; ++i) {
    if (!RunAckLevel(ack_cases[i].level, ack_cases[i].name, ops, keys, value,
                     &ack_results[i])) {
      return 1;
    }
  }

  // ---- 2. replica GET scaling + 3. lag under load (one shared pair) ------
  std::vector<GetScalePoint> get_scaling;
  cuckoo::obs::HistogramSnapshot lag_lsn;
  std::uint64_t lag_samples = 0, lag_peak = 0, final_lag = UINT64_MAX;
  bool get_values_ok = true;
  {
    PrimaryHarness primary;
    if (!primary.Start(psock, cuckoo::repl::AckLevel::kAsync)) {
      return 1;
    }
    ReplicaHarness replica;
    if (!replica.Start(rsock, primary.server->tcp_port())) {
      return 1;
    }
    {
      cuckoo::SocketClient loader(psock);
      if (!loader.connected()) {
        return 1;
      }
      for (std::uint64_t i = 0; i < keys; ++i) {
        if (loader.RoundTrip(SetCmd("key" + std::to_string(i), value), "\r\n") !=
            "STORED\r\n") {
          return 1;
        }
      }
    }
    if (!WaitConverged(&primary, &replica, "key" + std::to_string(keys - 1), value,
                       nullptr)) {
      return 1;
    }

    // GET scaling: closed-loop readers against the replica's socket.
    const std::string expect = " 0 " + std::to_string(value_size) + "\r\n";
    for (const int threads : {1, 2, 4}) {
      std::atomic<bool> ok{true};
      std::vector<std::thread> readers;
      const std::uint64_t per_thread = ops / static_cast<std::uint64_t>(threads) + 1;
      cuckoo::Stopwatch watch;
      for (int t = 0; t < threads; ++t) {
        readers.emplace_back([&, t] {
          cuckoo::SocketClient reader(rsock);
          if (!reader.connected()) {
            ok.store(false, std::memory_order_relaxed);
            return;
          }
          std::uint64_t cursor = 12345u + static_cast<std::uint64_t>(t);
          for (std::uint64_t i = 0; i < per_thread; ++i) {
            const std::string key = "key" + std::to_string(cursor % keys);
            cursor = cursor * 6364136223846793005ull + 1442695040888963407ull;
            const std::string r = reader.RoundTrip("get " + key + "\r\n", "END\r\n");
            if (r.find("VALUE " + key + expect) == std::string::npos) {
              ok.store(false, std::memory_order_relaxed);
              return;
            }
          }
        });
      }
      for (std::thread& t : readers) {
        t.join();
      }
      const double seconds = watch.ElapsedSeconds();
      if (!ok.load(std::memory_order_relaxed)) {
        get_values_ok = false;
      }
      GetScalePoint point;
      point.threads = threads;
      point.gets_per_sec = seconds > 0
                               ? static_cast<double>(per_thread) * threads / seconds
                               : 0;
      get_scaling.push_back(point);
    }

    // Lag under load: burst writes while sampling hub lag every ~2ms.
    std::atomic<bool> writing{true};
    cuckoo::obs::Histogram lag_hist;
    std::thread sampler([&] {
      while (writing.load(std::memory_order_acquire)) {
        const std::uint64_t lag = primary.hub->LagLsns();
        lag_hist.Record(lag);
        if (lag > lag_peak) {
          lag_peak = lag;
        }
        ++lag_samples;
        ::usleep(2 * 1000);
      }
    });
    {
      cuckoo::SocketClient writer(psock);
      if (!writer.connected()) {
        writing.store(false);
        sampler.join();
        return 1;
      }
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (writer.RoundTrip(SetCmd("burst" + std::to_string(i % keys), value),
                             "\r\n") != "STORED\r\n") {
          writing.store(false);
          sampler.join();
          return 1;
        }
      }
      writing.store(false, std::memory_order_release);
      sampler.join();
      if (writer.RoundTrip(SetCmd("drain", value), "\r\n") != "STORED\r\n" ||
          !WaitConverged(&primary, &replica, "drain", value, nullptr)) {
        return 1;
      }
      final_lag = primary.hub->LagLsns();
    }
    lag_lsn = lag_hist.Snapshot();
  }

  // ---- report ------------------------------------------------------------
  std::printf("== repl_throughput ==\n");
  std::printf("ops=%llu keys=%llu value=%zuB\n", static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(keys), value_size);
  for (const AckResult& r : ack_results) {
    std::printf("  ack=%-9s %10.0f sets/s  p50/p99=%llu/%llu us  converge=%.0fms\n",
                r.name, r.sets_per_sec,
                static_cast<unsigned long long>(r.set_latency_ns.P50() / 1000),
                static_cast<unsigned long long>(r.set_latency_ns.P99() / 1000),
                r.converge_ms);
  }
  for (const GetScalePoint& p : get_scaling) {
    std::printf("  replica gets, %d thread(s): %10.0f gets/s\n", p.threads,
                p.gets_per_sec);
  }
  std::printf("  lag under async load: %llu samples, peak=%llu lsns, p99=%llu, "
              "final=%llu\n",
              static_cast<unsigned long long>(lag_samples),
              static_cast<unsigned long long>(lag_peak),
              static_cast<unsigned long long>(lag_lsn.P99()),
              static_cast<unsigned long long>(final_lag));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"repl_throughput\",\n");
  std::fprintf(out,
               "  \"config\": {\"ops\": %llu, \"keys\": %llu, \"value_size\": %zu, "
               "\"smoke\": %s},\n",
               static_cast<unsigned long long>(ops),
               static_cast<unsigned long long>(keys), value_size,
               smoke ? "true" : "false");
  std::fprintf(out, "  \"ack_sweep\": [\n");
  for (int i = 0; i < 3; ++i) {
    const AckResult& r = ack_results[i];
    std::string hist;
    cuckoo::AppendJsonHistogram("set_latency_ns", r.set_latency_ns, &hist);
    std::fprintf(out,
                 "    {\"ack\": \"%s\", \"sets_per_sec\": %.1f, "
                 "\"converge_ms\": %.1f, \"semi_sync_timeouts\": %lld,\n     %s}%s\n",
                 r.name, r.sets_per_sec, r.converge_ms, r.semi_sync_timeouts,
                 hist.c_str(), i + 1 < 3 ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"replica_get_scaling\": [\n");
  for (std::size_t i = 0; i < get_scaling.size(); ++i) {
    std::fprintf(out, "    {\"threads\": %d, \"gets_per_sec\": %.1f}%s\n",
                 get_scaling[i].threads, get_scaling[i].gets_per_sec,
                 i + 1 < get_scaling.size() ? "," : "");
  }
  std::string lag_hist_json;
  cuckoo::AppendJsonHistogram("lag_lsn", lag_lsn, &lag_hist_json);
  std::fprintf(out,
               "  ],\n  \"lag\": {\"samples\": %llu, \"peak_lsn\": %llu, "
               "\"final_lag_lsn\": %llu, %s}\n}\n",
               static_cast<unsigned long long>(lag_samples),
               static_cast<unsigned long long>(lag_peak),
               static_cast<unsigned long long>(final_lag), lag_hist_json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity gates (always-on; the loosest structural form of the acceptance
  // criteria so tiny CI hosts don't flake on absolute numbers).
  for (const AckResult& r : ack_results) {
    if (r.sets_per_sec <= 0) {
      std::fprintf(stderr, "FAIL: ack=%s measured zero throughput\n", r.name);
      return 1;
    }
    if (r.semi_sync_timeouts != 0) {
      std::fprintf(stderr, "FAIL: ack=%s saw %lld semi-sync timeouts\n", r.name,
                   r.semi_sync_timeouts);
      return 1;
    }
  }
  // Waiting for a replica ack cannot be faster than not waiting: semi-sync
  // p50 below async p50 would mean the gate isn't actually gating.
  if (ack_results[2].set_latency_ns.P50() < ack_results[1].set_latency_ns.P50() / 2) {
    std::fprintf(stderr, "FAIL: semi-sync p50 %llu ns implausibly beat async %llu ns\n",
                 static_cast<unsigned long long>(ack_results[2].set_latency_ns.P50()),
                 static_cast<unsigned long long>(ack_results[1].set_latency_ns.P50()));
    return 1;
  }
  if (!get_values_ok || get_scaling.empty() || get_scaling.back().gets_per_sec <= 0) {
    std::fprintf(stderr, "FAIL: replica GETs served wrong bytes or no throughput\n");
    return 1;
  }
  if (lag_samples == 0 || final_lag != 0) {
    std::fprintf(stderr, "FAIL: lag never sampled or never drained (final=%llu)\n",
                 static_cast<unsigned long long>(final_lag));
    return 1;
  }
  return 0;
}
