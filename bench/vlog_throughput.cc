// vlog_throughput: larger-than-memory tier benchmark for the KV server.
//
// Three experiments over a real unix socket against a KvService whose values
// live in the value log (tiering threshold far below the value size):
//
//   1. GET tier sweep — the same GET workload against three value homes:
//        inline — tiering disabled (threshold above the value size); the
//                 pure in-RAM baseline every other number is judged against.
//        hot    — tiered values served from the ClockCache hot tier (cache
//                 sized to hold the working set). The acceptance criterion
//                 is that this stays within ~10% of inline on real runs.
//        cold   — a 1-byte cache admits nothing, so every GET misses RAM,
//                 parks the connection, and rides the async disk-read path
//                 (io_uring where available, thread pool otherwise).
//
//   2. GC impact — a sustained overwrite workload (every set creates dead
//      bytes in the log) measured with the compactor off and then with an
//      aggressive trigger, reporting the sets/s ratio and how many bytes GC
//      reclaimed while the writers ran.
//
//   3. loop liveness — while one connection is parked on a deliberately
//      slowed disk read, a second connection on the same event loop issues
//      inline GETs; reports that client's observed p99. This is the "epoll
//      loop never blocks on disk" acceptance criterion as a number.
//
// Emits BENCH_vlog.json (path via --out). --smoke shrinks everything to a
// seconds-scale CI sanity run and enforces the structural expectations
// (cold reads actually hit disk, GC actually reclaims, the parked read
// never stalls the loop) with a non-zero exit on violation.
//
//   ./build/bench/vlog_throughput [--ops=20000] [--keys=2000]
//       [--value_size=2048] [--out=BENCH_vlog.json] [--smoke]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/benchkit/flags.h"
#include "src/common/file_util.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/obs/histogram.h"
#include "src/store/tiered_store.h"

namespace {

std::string MakeTempDir() {
  std::string tmpl = "/tmp/cuckoo_vlog_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  return made != nullptr ? std::string(made) : std::string();
}

void RemoveTree(const std::string& dir) {
  for (const std::string& name : cuckoo::ListFilesWithPrefix(dir, "")) {
    cuckoo::RemoveFile(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

// One tiered server stack on a unix socket, torn down (files removed) on exit.
struct Harness {
  std::string dir;
  cuckoo::store::TieredStore tier;
  std::unique_ptr<cuckoo::KvService> service;
  std::unique_ptr<cuckoo::SocketServer> server;

  // threshold > value size disables tiering (the inline baseline).
  bool Start(const std::string& sock_path, std::size_t threshold_bytes,
             std::size_t cache_bytes, double gc_trigger,
             std::uint64_t segment_bytes = 8u << 20) {
    dir = MakeTempDir();
    if (dir.empty()) {
      return false;
    }
    cuckoo::store::TieredStoreOptions t;
    t.dir = dir;
    t.threshold_bytes = threshold_bytes;
    t.segment_bytes = segment_bytes;
    t.cache_capacity_bytes = cache_bytes;
    t.gc_trigger = gc_trigger;
    std::string error;
    if (!tier.Open(t, &error)) {
      std::fprintf(stderr, "tier open failed: %s\n", error.c_str());
      return false;
    }
    cuckoo::KvService::Options so;
    so.tier = &tier;
    service = std::make_unique<cuckoo::KvService>(so);
    tier.SetGcHooks(
        [this](const std::string& key, const cuckoo::store::ValueLocation& old_loc,
               std::string_view data) {
          return service->RelocateTiered(key, old_loc, data);
        },
        [this] { return tier.SyncLog(); });
    if (gc_trigger > 0) {
      tier.StartGc();
    }
    cuckoo::SocketServer::Options opts;
    opts.unix_path = sock_path;
    opts.enable_tcp = false;
    opts.event_threads = 2;
    server = std::make_unique<cuckoo::SocketServer>(service.get(), opts);
    return server->Start();
  }

  ~Harness() {
    if (server) {
      server->Stop();
    }
    tier.StopGc();
    tier.Close();
    service.reset();
    if (!dir.empty()) {
      RemoveTree(dir);
    }
  }
};

std::string SetCmd(const std::string& key, const std::string& value) {
  return "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value + "\r\n";
}

bool LoadKeys(const std::string& sock, std::uint64_t keys, const std::string& value) {
  cuckoo::SocketClient client(sock);
  if (!client.connected()) {
    return false;
  }
  for (std::uint64_t i = 0; i < keys; ++i) {
    if (client.RoundTrip(SetCmd("key" + std::to_string(i), value), "\r\n") !=
        "STORED\r\n") {
      return false;
    }
  }
  return true;
}

struct GetResult {
  double gets_per_sec = 0;
  cuckoo::obs::HistogramSnapshot latency_ns;
  std::uint64_t disk_reads = 0;
  std::uint64_t hot_hits = 0;
  std::uint64_t parked = 0;
};

// `ops` synchronous GETs over `keys` hot/cold keys, client-side latency.
bool RunGets(const std::string& sock, std::uint64_t ops, std::uint64_t keys,
             std::size_t value_size, GetResult* out) {
  cuckoo::SocketClient client(sock);
  if (!client.connected()) {
    return false;
  }
  cuckoo::obs::Histogram latency;
  const std::string expect_len = " 0 " + std::to_string(value_size) + "\r\n";
  cuckoo::Stopwatch watch;
  std::uint64_t cursor = 12345;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::string key = "key" + std::to_string(cursor % keys);
    cursor = cursor * 6364136223846793005ull + 1442695040888963407ull;
    const auto t0 = std::chrono::steady_clock::now();
    const std::string r = client.RoundTrip("get " + key + "\r\n", "END\r\n");
    const auto dt = std::chrono::steady_clock::now() - t0;
    if (r.find("VALUE " + key + expect_len) == std::string::npos) {
      std::fprintf(stderr, "bad GET response for %s\n", key.c_str());
      return false;
    }
    latency.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  const double seconds = watch.ElapsedSeconds();
  out->gets_per_sec = seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  out->latency_ns = latency.Snapshot();
  return true;
}

void PrintTier(const char* name, const GetResult& r) {
  std::printf("  %-6s %10.0f gets/s  p50/p99=%llu/%llu us  disk_reads=%llu "
              "hot_hits=%llu parked=%llu\n",
              name, r.gets_per_sec,
              static_cast<unsigned long long>(r.latency_ns.P50() / 1000),
              static_cast<unsigned long long>(r.latency_ns.P99() / 1000),
              static_cast<unsigned long long>(r.disk_reads),
              static_cast<unsigned long long>(r.hot_hits),
              static_cast<unsigned long long>(r.parked));
}

void AppendTierJson(const char* name, const GetResult& r, bool last, std::string* out) {
  out->append("    {\"tier\": \"");
  out->append(name);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\", \"gets_per_sec\": %.1f, \"disk_reads\": %llu, \"hot_hits\": %llu, "
                "\"parked_reads\": %llu,\n     ",
                r.gets_per_sec, static_cast<unsigned long long>(r.disk_reads),
                static_cast<unsigned long long>(r.hot_hits),
                static_cast<unsigned long long>(r.parked));
  out->append(buf);
  cuckoo::AppendJsonHistogram("latency_ns", r.latency_ns, out);
  out->append(last ? "}\n" : "},\n");
}

}  // namespace

int main(int argc, char** argv) {
  cuckoo::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::uint64_t ops =
      static_cast<std::uint64_t>(flags.GetInt("ops", smoke ? 2000 : 20000));
  const std::uint64_t keys =
      static_cast<std::uint64_t>(flags.GetInt("keys", smoke ? 400 : 2000));
  const std::size_t value_size =
      static_cast<std::size_t>(flags.GetInt("value_size", 2048));
  const std::string out_path = flags.GetString("out", "BENCH_vlog.json");
  const std::string sock = "/tmp/cuckoo_vlog_bench.sock";
  const std::string value(value_size, 'v');
  std::string reader_backend = "none";

  // ---- 1. GET tier sweep: inline (RAM baseline) / hot cache / cold disk ---
  GetResult inline_r, hot_r, cold_r;
  struct TierCase {
    const char* name;
    std::size_t threshold;
    std::size_t cache_bytes;
    GetResult* result;
  };
  const TierCase cases[] = {
      {"inline", value_size * 2, 64u << 20, &inline_r},
      {"hot", 64, 64u << 20, &hot_r},
      {"cold", 64, 1, &cold_r},
  };
  for (const TierCase& c : cases) {
    Harness harness;
    if (!harness.Start(sock, c.threshold, c.cache_bytes, /*gc_trigger=*/0)) {
      return 1;
    }
    reader_backend = harness.tier.reader_backend();
    if (!LoadKeys(sock, keys, value)) {
      std::fprintf(stderr, "load failed for tier %s\n", c.name);
      return 1;
    }
    // One warm pass so "hot" measures cache hits, not first-touch fills.
    GetResult warm;
    if (!RunGets(sock, keys, keys, value_size, &warm) ||
        !RunGets(sock, ops, keys, value_size, c.result)) {
      return 1;
    }
    const cuckoo::store::TieredStoreStats s = harness.tier.Stats();
    c.result->disk_reads = s.disk_reads;
    c.result->hot_hits = s.hot_hits;
    c.result->parked = harness.server->Stats().parked_reads;
  }

  // ---- 2. GC impact: overwrite churn with the compactor off vs aggressive -
  double churn_off_sps = 0, churn_on_sps = 0;
  std::uint64_t gc_reclaimed = 0, gc_segments = 0;
  for (const bool gc_on : {false, true}) {
    Harness harness;
    // Segments sized so the churn seals dozens of them: GC has real targets.
    if (!harness.Start(sock, 64, 8u << 20, gc_on ? 0.25 : 0.0,
                       /*segment_bytes=*/256u << 10)) {
      return 1;
    }
    cuckoo::SocketClient client(sock);
    if (!client.connected()) {
      return 1;
    }
    // Overwrites over a small keyspace: every set strands the prior record.
    const std::uint64_t churn_keys = keys / 4 + 1;
    cuckoo::Stopwatch watch;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::string key = "key" + std::to_string(i % churn_keys);
      if (client.RoundTrip(SetCmd(key, value), "\r\n") != "STORED\r\n") {
        return 1;
      }
    }
    const double seconds = watch.ElapsedSeconds();
    const double sps = seconds > 0 ? static_cast<double>(ops) / seconds : 0;
    if (gc_on) {
      churn_on_sps = sps;
      // Let the compactor catch up, then read what it reclaimed.
      for (int i = 0; i < 100 && harness.tier.RunGcOnce(0.25); ++i) {
      }
      const cuckoo::store::TieredStoreStats s = harness.tier.Stats();
      gc_reclaimed = s.log.reclaimed_bytes;
      gc_segments = s.gc_segments;
    } else {
      churn_off_sps = sps;
    }
  }
  const double gc_ratio = churn_off_sps > 0 ? churn_on_sps / churn_off_sps : 0;

  // ---- 3. loop liveness: inline p99 while a parked disk read is in flight -
  cuckoo::obs::HistogramSnapshot liveness_ns;
  std::uint64_t liveness_parked = 0;
  {
    Harness harness;
    if (!harness.Start(sock, 64, /*cache_bytes=*/1, /*gc_trigger=*/0)) {
      return 1;
    }
    cuckoo::SocketServer::Options so;  // (note: harness already uses 2 loops;
    (void)so;                          //  the victim and prober share one)
    if (!LoadKeys(sock, 8, value)) {
      return 1;
    }
    harness.tier.SetReadDelayForTesting(smoke ? 50 : 100);
    std::atomic<bool> stop{false};
    std::thread victim([&] {
      cuckoo::SocketClient slow(sock);
      while (!stop.load(std::memory_order_relaxed) && slow.connected()) {
        // Each GET parks ~50-100ms on the slowed disk read.
        if (slow.RoundTrip("get key0\r\n", "END\r\n").find("END") == std::string::npos) {
          return;
        }
      }
    });
    cuckoo::obs::Histogram probe_latency;
    cuckoo::SocketClient prober(sock);
    if (!prober.connected()) {
      stop.store(true);
      victim.join();
      return 1;
    }
    if (prober.RoundTrip(SetCmd("probe", "pv"), "\r\n") != "STORED\r\n") {
      stop.store(true);
      victim.join();
      return 1;
    }
    const std::uint64_t probes = smoke ? 500 : 5000;
    for (std::uint64_t i = 0; i < probes; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      if (prober.RoundTrip("get probe\r\n", "END\r\n").find("VALUE") ==
          std::string::npos) {
        stop.store(true);
        victim.join();
        return 1;
      }
      probe_latency.Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    stop.store(true);
    victim.join();
    liveness_ns = probe_latency.Snapshot();
    liveness_parked = harness.server->Stats().parked_reads;
  }

  // ---- report ------------------------------------------------------------
  std::printf("== vlog_throughput ==\n");
  std::printf("ops=%llu keys=%llu value=%zuB reader=%s\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(keys), value_size,
              reader_backend.c_str());
  PrintTier("inline", inline_r);
  PrintTier("hot", hot_r);
  PrintTier("cold", cold_r);
  std::printf("  hot/inline throughput ratio %.2f, cold/inline %.2f\n",
              inline_r.gets_per_sec > 0 ? hot_r.gets_per_sec / inline_r.gets_per_sec : 0,
              inline_r.gets_per_sec > 0 ? cold_r.gets_per_sec / inline_r.gets_per_sec : 0);
  std::printf("  overwrite churn: gc_off %.0f sets/s, gc_on %.0f sets/s (ratio %.2f, "
              "%llu segments reclaimed %llu bytes)\n",
              churn_off_sps, churn_on_sps, gc_ratio,
              static_cast<unsigned long long>(gc_segments),
              static_cast<unsigned long long>(gc_reclaimed));
  std::printf("  loop liveness: inline p50/p99=%llu/%llu us beside a parked read "
              "(%llu parks)\n",
              static_cast<unsigned long long>(liveness_ns.P50() / 1000),
              static_cast<unsigned long long>(liveness_ns.P99() / 1000),
              static_cast<unsigned long long>(liveness_parked));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::string tiers;
  AppendTierJson("inline", inline_r, false, &tiers);
  AppendTierJson("hot", hot_r, false, &tiers);
  AppendTierJson("cold", cold_r, true, &tiers);
  std::string liveness_json;
  cuckoo::AppendJsonHistogram("probe_latency_ns", liveness_ns, &liveness_json);
  std::fprintf(out, "{\n  \"bench\": \"vlog_throughput\",\n");
  std::fprintf(out,
               "  \"config\": {\"ops\": %llu, \"keys\": %llu, \"value_size\": %zu, "
               "\"reader_backend\": \"%s\", \"smoke\": %s},\n",
               static_cast<unsigned long long>(ops),
               static_cast<unsigned long long>(keys), value_size, reader_backend.c_str(),
               smoke ? "true" : "false");
  std::fprintf(out, "  \"get_tiers\": [\n%s  ],\n", tiers.c_str());
  std::fprintf(out,
               "  \"gc_churn\": {\"gc_off_sets_per_sec\": %.1f, "
               "\"gc_on_sets_per_sec\": %.1f, \"ratio\": %.3f, "
               "\"segments_retired\": %llu, \"reclaimed_bytes\": %llu},\n",
               churn_off_sps, churn_on_sps, gc_ratio,
               static_cast<unsigned long long>(gc_segments),
               static_cast<unsigned long long>(gc_reclaimed));
  std::fprintf(out, "  \"loop_liveness\": {\"parked_reads\": %llu, %s}\n",
               static_cast<unsigned long long>(liveness_parked), liveness_json.c_str());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity gates (always-on; they encode the acceptance criteria in the
  // loosest form that still catches structural regressions on tiny hosts).
  if (cold_r.disk_reads == 0 || cold_r.parked == 0) {
    std::fprintf(stderr, "FAIL: cold tier never hit disk / never parked\n");
    return 1;
  }
  if (hot_r.disk_reads > ops / 10) {
    std::fprintf(stderr, "FAIL: hot tier went to disk for %llu of %llu gets\n",
                 static_cast<unsigned long long>(hot_r.disk_reads),
                 static_cast<unsigned long long>(ops));
    return 1;
  }
  if (inline_r.gets_per_sec > 0 && hot_r.gets_per_sec < 0.5 * inline_r.gets_per_sec) {
    std::fprintf(stderr, "FAIL: hot-tier GETs %.0f/s fell below half of inline %.0f/s\n",
                 hot_r.gets_per_sec, inline_r.gets_per_sec);
    return 1;
  }
  if (gc_segments == 0 || gc_reclaimed == 0) {
    std::fprintf(stderr, "FAIL: GC retired nothing under sustained overwrites\n");
    return 1;
  }
  // The probe shares an event loop pool with a read parked 50-100ms at a
  // time; if the loop ever blocked on disk the probe p99 would sit at the
  // park duration. Gate an order of magnitude below it.
  const std::uint64_t park_ms = smoke ? 50 : 100;
  if (liveness_ns.P99() > park_ms * 1000000ull / 2) {
    std::fprintf(stderr, "FAIL: inline p99 %.1fms beside a %llums parked read\n",
                 static_cast<double>(liveness_ns.P99()) / 1e6,
                 static_cast<unsigned long long>(park_ms));
    return 1;
  }
  return 0;
}
