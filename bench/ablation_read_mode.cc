// Ablation (DESIGN.md §6 / §7 of the paper): optimistic lock-free reads vs
// taking the bucket locks for reads — what the released libcuckoo does for
// generality "at the cost of a 5-20% slowdown."
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Ablation: read mode",
              "Lookup-only and 10%-insert throughput: optimistic (lock-free, version-"
              "validated) reads vs locked reads.",
              "optimistic reads win, most visibly on read-heavy mixes (paper: locked "
              "reads cost 5-20%)");

  ReportTable table({"read_mode", "lookup_mops", "mixed10_mops", "read_retries"});
  for (ReadMode mode : {ReadMode::kOptimistic, ReadMode::kLocked}) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = config.BucketLog2(8);
    o.auto_expand = false;
    o.read_mode = mode;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);

    const std::uint64_t prefill = config.FillTarget(map.SlotCount()) / 2;
    Prefill(map, prefill, config.seed);
    LookupRunResult lookups =
        RunLookupOnly(map, config.threads, prefill / 2, prefill, config.seed);

    CuckooMap<std::uint64_t, std::uint64_t> map2(o);
    RunOptions ro;
    ro.threads = config.threads;
    ro.insert_fraction = 0.1;
    ro.total_inserts = config.FillTarget(map2.SlotCount()) / 2;
    ro.seed = config.seed;
    double mixed = RunMixedFill(map2, ro).OverallMops();

    table.Row()
        .Cell(ToString(mode))
        .Cell(lookups.MopsPerSec())
        .Cell(mixed)
        .Cell(map.Stats().read_retries + map2.Stats().read_retries);
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
