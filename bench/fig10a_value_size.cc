// Figure 10a: throughput vs. value size with a fixed number of table entries
// (paper: 2^25 entries; default here 2^(slots_log2) slots), 8-byte keys,
// values from 8 to 256 bytes, for 1/4/8 threads at 100% and 10% insert.
//
// Paper shape: throughput decreases as value size grows (memory bandwidth);
// hyperthreading stops helping for large values (8-thread only ~27% over
// 4-thread at 256 B).
#include <array>
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <std::size_t N>
void MeasureValueSize(const BenchConfig& config, ReportTable& table) {
  using Value = std::array<char, N>;
  struct Case {
    int threads;
    double fraction;
  };
  const Case cases[] = {{1, 1.0}, {4, 1.0}, {8, 1.0}, {1, 0.1}, {8, 0.1}};
  for (const Case& c : cases) {
    if (c.threads > config.threads) {
      continue;
    }
    FlatCuckooMap<std::uint64_t, Value, TunedElided<SpinLock>, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(config.BucketLog2(8)));
    RunOptions ro;
    ro.threads = c.threads;
    ro.insert_fraction = c.fraction;
    ro.total_inserts = config.FillTarget(map.SlotCount());
    ro.seed = config.seed;
    RunResult result = RunMixedFill(map, ro);
    table.Row()
        .Cell(static_cast<std::uint64_t>(N))
        .Cell(c.threads)
        .Cell(FormatDouble(c.fraction * 100, 0) + "% insert")
        .Cell(result.OverallMops())
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0, 1);
  }
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 10a",
              "Throughput vs value size (8-256 B), fixed entry count, 1/4/8 threads.",
              "throughput falls as value size rises (memory bandwidth bound); extra "
              "threads help less and less at large values");

  ReportTable table({"value_bytes", "threads", "workload", "mops", "heap_mb"});
  MeasureValueSize<8>(config, table);
  MeasureValueSize<16>(config, table);
  MeasureValueSize<32>(config, table);
  MeasureValueSize<64>(config, table);
  MeasureValueSize<128>(config, table);
  MeasureValueSize<256>(config, table);
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
