// Figure 1: "Highest throughput achieved by different hash tables" —
// 50% insert / 50% lookup over 64-bit pairs, filling each table to 95%.
//
// Paper rows (4-core Haswell, 120M keys):
//   cuckoo+ with HTM            ~37 Mops
//   cuckoo+ fine-grained        ~31 Mops
//   Intel TBB concurrent_hash_map ~15 Mops
//   optimistic concurrent cuckoo  ~8 Mops
//   C++11 std::unordered_map      ~6 Mops   (global lock)
//   Google dense_hash_map         ~6 Mops   (global lock)
#include <cstdint>
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "src/baselines/chaining_map.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/baselines/global_lock_map.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <typename MapT>
double MeasureMixed(MapT& map, const BenchConfig& config, std::uint64_t total_inserts) {
  RunOptions ro;
  ro.threads = config.threads;
  ro.insert_fraction = 0.5;
  ro.total_inserts = total_inserts;
  ro.seed = config.seed;
  return RunMixedFill(map, ro).OverallMops();
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 1", "Best-case 50/50 read-write throughput by table type.",
              "cuckoo+ (HTM) > cuckoo+ (fine-grained) > TBB-style > optimistic cuckoo > "
              "globally locked std/dense maps; cuckoo tables use the least memory");

  ReportTable table({"table", "mops", "heap_mb", "bytes_per_pair"});
  const std::uint64_t inserts8 = config.FillTarget(std::size_t{1} << config.slots_log2);

  {
    FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(config.BucketLog2(8)));
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("cuckoo+ with HTM (tuned TSX* elision)")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }
  {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = config.BucketLog2(8);
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("cuckoo+ with fine-grained locking")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }
  {
    ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(std::size_t{1} << config.BucketLog2(1));
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("TBB-style concurrent chaining")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }
  {
    FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 4>
        map(MemC3Options(config.BucketLog2(4)));
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("optimistic concurrent cuckoo (MemC3)")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }
  {
    GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, std::mutex> map;
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("std::unordered_map-style + global lock")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }
  {
    GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, std::mutex> map;
    double mops = MeasureMixed(map, config, inserts8);
    table.Row()
        .Cell("dense_hash_map-style + global lock")
        .Cell(mops)
        .Cell(static_cast<double>(map.HeapBytes()) / 1048576.0)
        .Cell(static_cast<double>(map.HeapBytes()) / static_cast<double>(map.Size()), 1);
  }

  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
