// Ablation: FindBatch's software-pipelined prefetching vs a plain Find loop.
// The benefit is a DRAM-latency effect: negligible while the table fits in
// cache, significant once bucket reads miss (use --slots_log2 >= 23 on an
// 8 MB-LLC host).
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/common/timing.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/23);
  PrintBanner(config, "Ablation: batched lookup",
              "Single-thread lookup throughput: Find loop vs FindBatch (pipeline depth 8).",
              "batching wins on out-of-cache tables by overlapping bucket fetches");

  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = config.BucketLog2(8);
  o.auto_expand = false;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  const std::uint64_t resident = config.FillTarget(map.SlotCount());
  Prefill(map, resident, config.seed);

  const std::uint64_t lookups = resident / 2;
  Xorshift128Plus rng(config.seed + 3);

  ReportTable table({"method", "lookup_mops", "hit_rate"});

  {  // plain Find loop
    std::uint64_t hits = 0;
    std::uint64_t v;
    Stopwatch watch;
    for (std::uint64_t i = 0; i < lookups; ++i) {
      hits += map.Find(KeyForId(rng.NextBelow(resident), config.seed), &v) ? 1 : 0;
    }
    std::uint64_t nanos = watch.ElapsedNanos();
    table.Row()
        .Cell("Find loop")
        .Cell(Mops(lookups, nanos))
        .Cell(static_cast<double>(hits) / static_cast<double>(lookups), 4);
  }

  for (std::size_t batch : {16u, 64u, 256u, 1024u}) {
    std::vector<std::uint64_t> keys(batch);
    std::vector<std::uint64_t> values(batch);
    std::unique_ptr<bool[]> found(new bool[batch]);
    std::uint64_t hits = 0;
    Stopwatch watch;
    for (std::uint64_t done = 0; done + batch <= lookups; done += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        keys[i] = KeyForId(rng.NextBelow(resident), config.seed);
      }
      hits += map.FindBatch(keys.data(), batch, values.data(), found.get());
    }
    std::uint64_t nanos = watch.ElapsedNanos();
    std::uint64_t rounded = lookups / batch * batch;
    table.Row()
        .Cell("FindBatch(" + std::to_string(batch) + ")")
        .Cell(Mops(rounded, nanos))
        .Cell(static_cast<double>(hits) / static_cast<double>(rounded), 4);
  }

  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
