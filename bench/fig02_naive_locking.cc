// Figure 2 (§2.3): Insert throughput vs. thread count for single-writer hash
// tables behind one global lock, with and without TSX lock elision.
//
// Paper shape: every table's aggregate write throughput *drops* as threads
// are added (global pthread lock); glibc-style elision softens but does not
// fix the collapse, and the transactional abort rate exceeds 80% at 8
// writers. This binary also prints the measured abort rate per elided run.
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>

#include "bench/common.h"
#include "src/baselines/chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/baselines/global_lock_map.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

struct Row {
  std::string name;
  int threads;
  double mops;
  double abort_rate;  // < 0: not elided
};

template <typename MapFactory>
void Sweep(const BenchConfig& config, const std::string& name, MapFactory factory,
           std::vector<Row>* rows) {
  for (int threads = 1; threads <= config.threads; threads *= 2) {
    auto map = factory();
    RunOptions ro;
    ro.threads = threads;
    ro.insert_fraction = 1.0;
    ro.total_inserts = config.FillTarget(std::size_t{1} << config.slots_log2) / 2;
    ro.seed = config.seed;
    RunResult result = RunMixedFill(*map, ro);
    rows->push_back(Row{name, threads, result.OverallMops(), -1.0});
  }
}

template <typename MapFactory, typename StatsGetter>
void SweepElided(const BenchConfig& config, const std::string& name, MapFactory factory,
                 StatsGetter stats, std::vector<Row>* rows) {
  for (int threads = 1; threads <= config.threads; threads *= 2) {
    auto map = factory();
    RunOptions ro;
    ro.threads = threads;
    ro.insert_fraction = 1.0;
    ro.total_inserts = config.FillTarget(std::size_t{1} << config.slots_log2) / 2;
    ro.seed = config.seed;
    RunResult result = RunMixedFill(*map, ro);
    rows->push_back(Row{name, threads, result.OverallMops(), stats(*map).AbortRate()});
  }
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 2",
              "Insert throughput vs threads: single-writer tables behind one global lock, "
              "with and without TSX lock elision (glibc-style policy).",
              "multi-thread aggregate throughput falls below single-thread for the plain "
              "global lock; elision recovers some loss; abort rates climb with writers "
              "(>80% at 8 writers in the paper)");

  std::vector<Row> rows;
  const std::size_t cuckoo_log2 = config.BucketLog2(4);

  Sweep(config, "cuckoo (MemC3) + global mutex", [&] {
    return std::make_unique<FlatCuckooMap<std::uint64_t, std::uint64_t, std::mutex>>(
        MemC3Options(cuckoo_log2));
  }, &rows);
  SweepElided(config, "cuckoo (MemC3) + TSX elision", [&] {
    return std::make_unique<
        FlatCuckooMap<std::uint64_t, std::uint64_t, GlibcElided<SpinLock>>>(
        MemC3Options(cuckoo_log2));
  }, [](auto& map) { return map.global_lock().stats().Read(); }, &rows);

  Sweep(config, "dense_hash_map-style + global mutex", [&] {
    return std::make_unique<GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, std::mutex>>();
  }, &rows);
  SweepElided(config, "dense_hash_map-style + TSX elision", [&] {
    return std::make_unique<
        GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, GlibcElided<SpinLock>>>();
  }, [](auto& map) { return map.global_lock().stats().Read(); }, &rows);

  Sweep(config, "unordered_map-style + global mutex", [&] {
    return std::make_unique<
        GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, std::mutex>>();
  }, &rows);
  SweepElided(config, "unordered_map-style + TSX elision", [&] {
    return std::make_unique<
        GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, GlibcElided<SpinLock>>>();
  }, [](auto& map) { return map.global_lock().stats().Read(); }, &rows);

  ReportTable table({"table", "threads", "mops", "abort_rate"});
  for (const Row& row : rows) {
    auto builder = table.Row();
    builder.Cell(row.name).Cell(row.threads).Cell(row.mops);
    if (row.abort_rate >= 0) {
      builder.Cell(row.abort_rate, 3);
    } else {
      builder.Cell("-");
    }
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
