// Ablation: lock striping over ONE cuckoo table (cuckoo+) vs sharding across
// many single-lock cuckoo tables — the classic alternative concurrency
// design. Sharding pays two structural costs the paper's design avoids:
// the fullest shard caps achievable occupancy (no global load balancing),
// and a skewed write stream serializes on hot shards.
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/sharded_map.h"

namespace cuckoo {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Ablation: striping vs sharding",
              "One striped-lock cuckoo table vs 4/16/64 single-lock shards, "
              "insert-only and 50/50, plus max achievable occupancy.",
              "striping matches sharded throughput while reaching higher occupancy "
              "(no per-shard fill ceiling)");

  ReportTable table({"design", "insert_mops", "mixed50_mops", "max_load", "imbalance"});

  // Striped single table.
  {
    double insert_mops = 0;
    double mixed_mops = 0;
    for (double fraction : {1.0, 0.5}) {
      CuckooMap<std::uint64_t, std::uint64_t>::Options o;
      o.initial_bucket_count_log2 = config.BucketLog2(8);
      o.auto_expand = false;
      CuckooMap<std::uint64_t, std::uint64_t> map(o);
      RunOptions ro;
      ro.threads = config.threads;
      ro.insert_fraction = fraction;
      ro.total_inserts = config.FillTarget(map.SlotCount());
      ro.seed = config.seed;
      (fraction == 1.0 ? insert_mops : mixed_mops) = RunMixedFill(map, ro).OverallMops();
    }
    // Max occupancy: fill a fresh instance until refusal.
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = 10;
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> probe(o);
    std::uint64_t i = 0;
    while (probe.Insert(i, i) == InsertResult::kOk) {
      ++i;
    }
    table.Row()
        .Cell("striped (cuckoo+)")
        .Cell(insert_mops)
        .Cell(mixed_mops)
        .Cell(probe.LoadFactor(), 3)
        .Cell(1.0, 2);
  }

  for (std::size_t shards_log2 : {2u, 4u, 6u}) {
    ShardedMap<std::uint64_t, std::uint64_t>::Options so;
    so.shard_count_log2 = shards_log2;
    so.slots_per_shard_log2 = config.slots_log2 - shards_log2;
    double insert_mops = 0;
    double mixed_mops = 0;
    for (double fraction : {1.0, 0.5}) {
      ShardedMap<std::uint64_t, std::uint64_t> map(so);
      RunOptions ro;
      ro.threads = config.threads;
      ro.insert_fraction = fraction;
      ro.total_inserts = config.FillTarget(map.SlotCount());
      ro.seed = config.seed;
      (fraction == 1.0 ? insert_mops : mixed_mops) = RunMixedFill(map, ro).OverallMops();
    }
    ShardedMap<std::uint64_t, std::uint64_t>::Options probe_opts;
    probe_opts.shard_count_log2 = shards_log2;
    probe_opts.slots_per_shard_log2 = 13 - shards_log2;  // 8K total slots, like the probe above
    ShardedMap<std::uint64_t, std::uint64_t> probe(probe_opts);
    std::uint64_t i = 0;
    while (probe.Insert(i, i) == InsertResult::kOk) {
      ++i;
    }
    table.Row()
        .Cell(std::to_string(std::size_t{1} << shards_log2) + " shards")
        .Cell(insert_mops)
        .Cell(mixed_mops)
        .Cell(probe.LoadFactor(), 3)
        .Cell(probe.ShardImbalance(), 2);
  }

  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
