// Expansion latency cliff, A/B: the same multi-threaded fill driven across a
// forced x2 expansion of GeneralCuckooMap, once with the stop-the-world
// rehash (incremental_expand=false) and once with the incremental two-core
// migration window. Every insert is timed individually, so the worst single
// op IS the stall a client request would have eaten: under stop-the-world
// that is the full-table rehash hold; under incremental it is one bounded
// help-drain / piggyback slice. Emits BENCH_expand.json so CI tracks the
// cliff; --smoke additionally enforces the stall-reduction floor
// (--min_ratio, default 5).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/common/timing.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/obs/histogram.h"

namespace cuckoo {
namespace {

using BenchMap = GeneralCuckooMap<std::uint64_t, std::uint64_t>;

struct VariantResult {
  obs::HistogramSnapshot insert_ns;  // every insert, timed at the call site
  MapStatsSnapshot table;
};

// Multi-threaded fill of a fresh map past its initial capacity, so at least
// one x2 expansion fires while the writers run. Per-op timing at the call
// site (not the table's sampled timers): the max must capture the one insert
// that pays for the expansion.
VariantResult RunVariant(bool incremental, std::size_t bucket_log2,
                         std::size_t stripes, int threads, std::uint64_t total,
                         std::uint64_t seed) {
  BenchMap::Options o;
  o.initial_bucket_count_log2 = bucket_log2;
  o.stripe_count = stripes;
  o.incremental_expand = incremental;
  BenchMap map(o);

  obs::Histogram insert_ns;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = static_cast<std::uint64_t>(t); i < total;
           i += static_cast<std::uint64_t>(threads)) {
        const std::uint64_t key = seed + i;
        const std::uint64_t begin = NowNanos();
        const InsertResult r = map.Insert(key, key * 2 + 1);
        insert_ns.Record(NowNanos() - begin);
        if (r != InsertResult::kOk && r != InsertResult::kKeyExists) {
          std::fprintf(stderr, "insert %llu failed mid-fill\n",
                       static_cast<unsigned long long>(key));
          std::abort();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  return VariantResult{insert_ns.Snapshot(), map.Stats()};
}

void AppendVariantJson(const char* label, const VariantResult& r, std::string* json) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\n    \"max_stall_ns\": %llu,\n"
                "    \"expansions\": %lld, \"migrations_started\": %lld, "
                "\"migrations_completed\": %lld, \"migrated_entries\": %lld, "
                "\"migrations_force_finished\": %lld,\n    ",
                label, static_cast<unsigned long long>(r.insert_ns.Max()),
                static_cast<long long>(r.table.expansions),
                static_cast<long long>(r.table.migrations_started),
                static_cast<long long>(r.table.migrations_completed),
                static_cast<long long>(r.table.migrated_entries),
                static_cast<long long>(r.table.migrations_force_finished));
  json->append(buf);
  AppendJsonHistogram("insert_ns", r.insert_ns, json);
  json->append(",\n    ");
  AppendJsonHistogram("expansion_pause_ns", r.table.expansion_pause_ns, json);
  json->append(",\n    ");
  AppendJsonHistogram("migration_stall_ns", r.table.migration_stall_ns, json);
  std::snprintf(buf, sizeof(buf), ",\n    \"migration_max_stall_ns\": %lld\n  }",
                static_cast<long long>(r.table.migration_max_stall_ns));
  json->append(buf);
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/20);
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::string out_path = flags.GetString("out", "BENCH_expand.json");
  const double min_ratio = flags.GetDouble("min_ratio", smoke ? 5.0 : 0.0);
  // Interleaved rounds, best (smallest) max-stall per arm: the stall being
  // measured is deterministic work (a rehash hold, a bounded drain slice),
  // while a preempted thread mid-op shows up as a one-round outlier —
  // especially on the 1-core CI runners.
  const int rounds = flags.GetInt("rounds", smoke ? 3 : 2);

  if (smoke && !flags.Has("slots_log2")) {
    // Big enough that the stop-the-world rehash (the thing being measured)
    // dwarfs a scheduler timeslice; still seconds-scale.
    config.slots_log2 = 18;
  }
  if (smoke && !flags.Has("threads")) {
    // Per-op wall-clock stalls are meaningless with more runnable threads
    // than CPUs (every preemption charges a full timeslice to some op in
    // BOTH arms). Leave one core for the migrator; floor of one writer.
    config.threads = std::min(std::max(NumOnlineCpus() - 1, 1), 4);
  }
  const std::size_t bucket_log2 = config.BucketLog2(4);
  const std::size_t bucket_count = std::size_t{1} << bucket_log2;
  // Stripes must divide the bucket count or the table falls back to
  // stop-the-world in BOTH arms and the comparison is vacuous.
  const std::size_t stripes = std::min<std::size_t>(LockStripes::kDefaultStripeCount,
                                                    bucket_count);
  // 1.3x the initial slot capacity: guarantees the fill crosses the x2
  // expansion, lands well under the doubled table's high-occupancy band.
  const std::uint64_t total = (bucket_count * 4 * 13) / 10;

  PrintBanner(config, "expand",
              "max single-insert stall across a forced x2 expansion: "
              "stop-the-world rehash vs. incremental two-core migration",
              "incremental migration turns the rehash cliff into bounded "
              "help-drain slices; worst insert drops by >=5x");

  VariantResult stw;
  VariantResult incr;
  std::uint64_t stw_best = ~std::uint64_t{0};
  std::uint64_t incr_best = ~std::uint64_t{0};
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(round) * total * 2;
    VariantResult s = RunVariant(false, bucket_log2, stripes, config.threads, total, seed);
    VariantResult i = RunVariant(true, bucket_log2, stripes, config.threads, total, seed);
    if (s.insert_ns.Max() < stw_best) {
      stw_best = s.insert_ns.Max();
      stw = s;
    }
    if (i.insert_ns.Max() < incr_best) {
      incr_best = i.insert_ns.Max();
      incr = i;
    }
  }

  const double ratio = incr.insert_ns.Max() == 0
                           ? 0.0
                           : static_cast<double>(stw.insert_ns.Max()) /
                                 static_cast<double>(incr.insert_ns.Max());
  if (!config.csv) {
    std::printf("  stop-the-world: insert p99 %llu ns, max stall %llu ns "
                "(%lld expansions)\n",
                static_cast<unsigned long long>(stw.insert_ns.P99()),
                static_cast<unsigned long long>(stw.insert_ns.Max()),
                static_cast<long long>(stw.table.expansions));
    std::printf("  incremental:    insert p99 %llu ns, max stall %llu ns "
                "(%lld expansions, %lld migration windows, %lld entries moved)\n",
                static_cast<unsigned long long>(incr.insert_ns.P99()),
                static_cast<unsigned long long>(incr.insert_ns.Max()),
                static_cast<long long>(incr.table.expansions),
                static_cast<long long>(incr.table.migrations_started),
                static_cast<long long>(incr.table.migrated_entries));
    std::printf("  max-stall reduction: %.1fx\n", ratio);
  } else {
    std::printf("expand,%llu,%llu,%.2f\n",
                static_cast<unsigned long long>(stw.insert_ns.Max()),
                static_cast<unsigned long long>(incr.insert_ns.Max()), ratio);
  }

  std::string json = "{\n  \"bench\": \"expansion_latency\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"threads\": %d, \"bucket_log2\": %zu, "
                  "\"stripes\": %zu, \"total_inserts\": %llu, \"rounds\": %d, "
                  "\"smoke\": %s},\n",
                  config.threads, bucket_log2, stripes,
                  static_cast<unsigned long long>(total), rounds,
                  smoke ? "true" : "false");
    json += buf;
  }
  AppendVariantJson("stop_the_world", stw, &json);
  json += ",\n";
  AppendVariantJson("incremental", incr, &json);
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\n  \"max_stall_ratio\": %.2f\n}\n", ratio);
    json += buf;
  }
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (!config.csv) {
    std::printf("wrote %s\n", out_path.c_str());
  }

  // The comparison is only meaningful if both arms really expanded and the
  // incremental arm really ran the two-core path; check before the ratio.
  if (stw.table.expansions == 0 || incr.table.expansions == 0) {
    std::fprintf(stderr, "FAIL: fill did not force an expansion (stw %lld, incr %lld)\n",
                 static_cast<long long>(stw.table.expansions),
                 static_cast<long long>(incr.table.expansions));
    return 1;
  }
  if (incr.table.migrations_started == 0) {
    std::fprintf(stderr, "FAIL: incremental arm never opened a migration window "
                         "(stripes misaligned?)\n");
    return 1;
  }
  if (min_ratio > 0.0 && ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: max-stall reduction %.2fx below the %.1fx floor "
                 "(stw %llu ns vs incremental %llu ns)\n",
                 ratio, min_ratio,
                 static_cast<unsigned long long>(stw.insert_ns.Max()),
                 static_cast<unsigned long long>(incr.insert_ns.Max()));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
