// Figure 5a: single-thread Insert factor analysis with all locks disabled —
// cuckoo (MemC3, DFS) -> +BFS -> +prefetch, measured overall (0-0.95) and in
// the 0.75-0.9 and 0.9-0.95 load intervals.
//
// Paper numbers (Mops): overall 5.64 / 5.89 / 5.98; load 0.9-0.95
// 1.96 / 2.48 / 2.70 — i.e. BFS helps ~26% at high load, prefetch ~9% more.
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/cuckoo/flat_cuckoo_map.h"

namespace cuckoo {
namespace {

using Map = FlatCuckooMap<std::uint64_t, std::uint64_t, NullLock, DefaultHash<std::uint64_t>,
                          std::equal_to<std::uint64_t>, 8>;

int Run(int argc, char** argv) {
  // Default to a table whose tag array exceeds L3: the prefetch benefit is a
  // DRAM-latency effect and vanishes on cache-resident tables.
  BenchConfig config = BenchConfig::FromFlags(argc, argv, /*default_slots_log2=*/24);
  PrintBanner(config, "Figure 5a",
              "Single-thread insert-only factor analysis, locks disabled (NullLock).",
              "BFS improves high-load throughput ~26% over DFS; prefetch adds ~9%; "
              "low-load throughput is barely affected");

  struct Variant {
    const char* name;
    FlatOptions opts;
  };
  const std::size_t bucket_log2 = config.BucketLog2(8);
  FlatOptions base = MemC3Options(bucket_log2);
  base.lock_after_discovery = true;  // locks are no-ops; keep code path comparable
  FlatOptions bfs = base;
  bfs.search_mode = SearchMode::kBfs;
  FlatOptions pf = bfs;
  pf.prefetch = true;
  const Variant variants[] = {{"cuckoo (DFS)", base}, {"+BFS", bfs}, {"+prefetch", pf}};

  ReportTable table({"variant", "overall_mops", "load_0.75-0.9_mops", "load_0.9-0.95_mops",
                     "mean_path", "max_path"});
  for (const Variant& variant : variants) {
    Map map(variant.opts);
    RunOptions ro;
    ro.threads = 1;
    ro.insert_fraction = 1.0;
    ro.total_inserts = config.FillTarget(map.SlotCount());
    ro.seed = config.seed;
    // Segment boundaries map occupancy 0.75/0.90 onto the insert budget.
    ro.segment_boundaries = {0.75 / config.fill, 0.90 / config.fill, 1.0};
    RunResult result = RunMixedFill(map, ro);
    MapStatsSnapshot stats = map.Stats();
    table.Row()
        .Cell(variant.name)
        .Cell(result.OverallMops())
        .Cell(result.segments[1].MopsPerSec())
        .Cell(result.segments[2].MopsPerSec())
        .Cell(stats.MeanPathLength(), 3)
        .Cell(stats.MaxPathLength());
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
