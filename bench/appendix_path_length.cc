// Appendix C / Eq. 2 and §4.3.2: cuckoo-path length distributions for DFS vs
// BFS while filling 4- and 8-way tables to 95%, against the analytic BFS
// bound L_BFS = ceil(log_B(M/2 - M/(2B) + 1)).
//
// Paper claim: with B=4, M=2000, DFS paths can reach 250 displacements while
// L_BFS = 5 — "This optimization is key to reducing the size of the critical
// section."
#include <cstdint>
#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/cuckoo/flat_cuckoo_map.h"

namespace cuckoo {
namespace {

template <int B>
void Measure(const BenchConfig& config, SearchMode mode, std::size_t max_slots,
             ReportTable& table) {
  FlatOptions o = CuckooPlusOptions(config.BucketLog2(B));
  o.search_mode = mode;
  o.max_search_slots = max_slots;
  FlatCuckooMap<std::uint64_t, std::uint64_t, NullLock, DefaultHash<std::uint64_t>,
                std::equal_to<std::uint64_t>, B>
      map(o);
  std::uint64_t target = config.FillTarget(map.SlotCount());
  for (std::uint64_t id = 0; id < target; ++id) {
    map.Insert(KeyForId(id, config.seed), id);
  }
  MapStatsSnapshot stats = map.Stats();

  // p99 of nonzero path lengths.
  std::int64_t paths = 0;
  for (std::size_t len = 1; len < kPathHistogramBuckets; ++len) {
    paths += stats.path_length_hist[len];
  }
  std::int64_t p99 = 0;
  std::int64_t cumulative = 0;
  for (std::size_t len = 1; len < kPathHistogramBuckets; ++len) {
    cumulative += stats.path_length_hist[len];
    if (cumulative * 100 >= paths * 99) {
      p99 = static_cast<std::int64_t>(len);
      break;
    }
  }

  table.Row()
      .Cell(std::to_string(B) + "-way")
      .Cell(ToString(mode))
      .Cell(static_cast<std::uint64_t>(max_slots))
      .Cell(stats.MeanPathLength(), 3)
      .Cell(p99)
      .Cell(stats.MaxPathLength())
      .Cell(mode == SearchMode::kBfs
                ? std::to_string(MaxBfsPathLength(B, max_slots))
                : std::string("250 (cap)"))
      .Cell(map.LoadFactor(), 3);
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Appendix C / Eq. 2",
              "Cuckoo-path length statistics (executed displacements per path-insert), "
              "DFS vs BFS, filling to 95%.",
              "DFS max path approaches its 250 cap; BFS max respects "
              "ceil(log_B(M/2 - M/2B + 1)) (5 for B=4, M=2000)");

  ReportTable table({"assoc", "search", "M", "mean_len", "p99_len", "max_len", "bound",
                     "final_load"});
  Measure<4>(config, SearchMode::kDfs, 2000, table);
  Measure<4>(config, SearchMode::kBfs, 2000, table);
  Measure<8>(config, SearchMode::kDfs, 2000, table);
  Measure<8>(config, SearchMode::kBfs, 2000, table);
  Measure<4>(config, SearchMode::kBfs, 500, table);
  Measure<8>(config, SearchMode::kBfs, 8000, table);
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
