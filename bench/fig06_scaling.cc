// Figure 6: throughput vs. thread count (1-8) for 100% / 50% / 10% insert
// workloads, for the six table configurations of the paper's legend:
//
//   cuckoo                 — MemC3 optimistic cuckoo, global mutex
//   cuckoo w/ TSX          — same, tuned TSX* elision
//   cuckoo+                — algorithms (lock-later + BFS + prefetch), global lock
//   cuckoo+ w/ TSX         — same, tuned TSX* elision
//   cuckoo+ fine-grained   — CuckooMap (striped locks, lock-free reads)
//   TBB-style              — concurrent chaining with per-bucket rw-locks
//
// 6a = average throughput filling 0 -> 95%; 6b = throughput in the 0.90-0.95
// occupancy band. Paper shape: basic cuckoo *drops* with more threads on
// write-heavy loads; cuckoo+ variants scale; TBB sits in between and loses
// at high occupancy.
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

struct Measured {
  double overall;
  double high;
};

template <typename MapT>
Measured MeasureMap(MapT& map, const BenchConfig& config, int threads, double insert_fraction,
                    std::uint64_t total_inserts) {
  RunOptions ro;
  ro.threads = threads;
  ro.insert_fraction = insert_fraction;
  ro.total_inserts = total_inserts;
  ro.seed = config.seed;
  ro.segment_boundaries = {0.90 / config.fill, 1.0};
  RunResult result = RunMixedFill(map, ro);
  return Measured{result.OverallMops(), result.segments[1].MopsPerSec()};
}

// Latency-profiling overhead: the same mixed fill on the fine-grained table
// with the sampled in-table timers on vs. off, best-of-`rounds` each, at the
// maximum thread count. Emits BENCH_latency.json so CI tracks both the
// percentiles and the record-path overhead.
int RunLatencySection(const BenchConfig& config, std::size_t bucket_log2,
                      std::uint64_t total, bool smoke, const std::string& out_path) {
  const int threads = config.threads;
  // The A/B delta being measured (~2-3 ns of sampled-timer cost per op) is
  // far below scheduler noise on short segments, especially oversubscribed.
  // Interleave on/off rounds (so slow system phases hit both arms alike)
  // and take the best of each arm — best-of converges on the true ceiling.
  const int rounds = 5;
  auto one_run = [&](bool profiling, MapStatsSnapshot* stats_out) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = bucket_log2;
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    map.SetLatencyProfiling(profiling);
    Measured m = MeasureMap(map, config, threads, 0.5, total);
    if (stats_out != nullptr) {
      *stats_out = map.Stats();
    }
    return m.overall;
  };

  MapStatsSnapshot stats;
  double mops_on = 0;
  double mops_off = 0;
  for (int r = 0; r < rounds; ++r) {
    MapStatsSnapshot round_stats;
    const double on = one_run(/*profiling=*/true, &round_stats);
    if (on > mops_on) {
      mops_on = on;
      stats = round_stats;
    }
    const double off = one_run(/*profiling=*/false, nullptr);
    if (off > mops_off) {
      mops_off = off;
    }
  }
  const double overhead_pct =
      mops_off > 0 ? (mops_off - mops_on) / mops_off * 100.0 : 0.0;

  if (!config.csv) {
    std::printf("\nlatency profiling overhead (fine-grained, 50%% insert, %d threads):\n",
                threads);
    std::printf("  profiling on:  %.2f Mops/s\n  profiling off: %.2f Mops/s\n"
                "  overhead:      %.1f%%\n",
                mops_on, mops_off, overhead_pct);
    std::printf("  lookup p50/p99/max: %llu/%llu/%llu ns  insert p50/p99/max: "
                "%llu/%llu/%llu ns\n",
                static_cast<unsigned long long>(stats.lookup_ns.P50()),
                static_cast<unsigned long long>(stats.lookup_ns.P99()),
                static_cast<unsigned long long>(stats.lookup_ns.Max()),
                static_cast<unsigned long long>(stats.insert_ns.P50()),
                static_cast<unsigned long long>(stats.insert_ns.P99()),
                static_cast<unsigned long long>(stats.insert_ns.Max()));
  }

  std::string json = "{\n  \"bench\": \"fig06_latency\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"threads\": %d, \"slots_log2\": %zu, "
                  "\"insert_fraction\": 0.5, \"smoke\": %s},\n",
                  threads, config.slots_log2, smoke ? "true" : "false");
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"throughput_mops\": {\"profiling_on\": %.3f, \"profiling_off\": "
                  "%.3f, \"overhead_percent\": %.2f},\n",
                  mops_on, mops_off, overhead_pct);
    json += buf;
  }
  json += "  ";
  AppendJsonHistogram("lookup_ns", stats.lookup_ns, &json);
  json += ",\n  ";
  AppendJsonHistogram("insert_ns", stats.insert_ns, &json);
  json += ",\n  ";
  AppendJsonHistogram("batch_hits", stats.batch_hits, &json);
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"table\": {\"path_searches\": %lld, \"path_invalidations\": "
                  "%lld, \"lock_contended\": %lld}\n}\n",
                  static_cast<long long>(stats.path_searches),
                  static_cast<long long>(stats.path_invalidations),
                  static_cast<long long>(stats.lock_contended));
    json += buf;
  }
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (!config.csv) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::string latency_out = flags.GetString("latency_out", "BENCH_latency.json");
  if (smoke && !flags.Has("slots_log2")) {
    // Seconds-scale CI run, but big enough that each timed A/B segment is
    // tens of milliseconds — shorter segments drown the overhead delta in
    // scheduler noise.
    config.slots_log2 = 18;
  }
  if (smoke) {
    // Smoke mode runs only the latency/overhead section (the scaling table
    // is minutes-scale); the percentiles still come from a real mixed fill.
    const std::size_t bucket_log2 = config.BucketLog2(8);
    const std::uint64_t total = config.FillTarget((std::size_t{1} << bucket_log2) * 8);
    return RunLatencySection(config, bucket_log2, total, smoke, latency_out);
  }
  PrintBanner(config, "Figure 6",
              "Throughput vs thread count for 100%/50%/10% insert workloads (6a overall, "
              "6b at 0.90-0.95 occupancy).",
              "basic cuckoo collapses with threads on writes; cuckoo+ (esp. fine-grained / "
              "TSX) keeps its edge; TBB-style trails cuckoo+ everywhere, worst at high load");

  const std::size_t bucket_log2 = config.BucketLog2(8);
  const std::uint64_t total = config.FillTarget((std::size_t{1} << bucket_log2) * 8);

  using Factory = std::function<Measured(int threads, double fraction)>;
  struct Config {
    std::string name;
    Factory measure;
  };
  std::vector<Config> tables;

  tables.push_back({"cuckoo", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, std::mutex, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(MemC3Options(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo w/ TSX", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                  DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, 8>
        map(MemC3Options(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+ w/ TSX", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                  DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+ fine-grained", [&](int threads, double fraction) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = bucket_log2;
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"TBB-style", [&](int threads, double fraction) {
    ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(std::size_t{1} << bucket_log2);
    return MeasureMap(map, config, threads, fraction, total);
  }});

  ReportTable table({"workload", "table", "threads", "overall_mops", "high_occ_mops"});
  for (double fraction : {1.0, 0.5, 0.1}) {
    for (const Config& cfg : tables) {
      for (int threads = 1; threads <= config.threads; threads *= 2) {
        Measured m = cfg.measure(threads, fraction);
        table.Row()
            .Cell(FormatDouble(fraction * 100, 0) + "% insert")
            .Cell(cfg.name)
            .Cell(threads)
            .Cell(m.overall)
            .Cell(m.high);
      }
    }
  }
  table.Print(std::cout, config.csv);
  return RunLatencySection(config, bucket_log2, total, /*smoke=*/false, latency_out);
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
