// Figure 6: throughput vs. thread count (1-8) for 100% / 50% / 10% insert
// workloads, for the six table configurations of the paper's legend:
//
//   cuckoo                 — MemC3 optimistic cuckoo, global mutex
//   cuckoo w/ TSX          — same, tuned TSX* elision
//   cuckoo+                — algorithms (lock-later + BFS + prefetch), global lock
//   cuckoo+ w/ TSX         — same, tuned TSX* elision
//   cuckoo+ fine-grained   — CuckooMap (striped locks, lock-free reads)
//   TBB-style              — concurrent chaining with per-bucket rw-locks
//
// 6a = average throughput filling 0 -> 95%; 6b = throughput in the 0.90-0.95
// occupancy band. Paper shape: basic cuckoo *drops* with more threads on
// write-heavy loads; cuckoo+ variants scale; TBB sits in between and loses
// at high occupancy.
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/baselines/concurrent_chaining_map.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

struct Measured {
  double overall;
  double high;
};

template <typename MapT>
Measured MeasureMap(MapT& map, const BenchConfig& config, int threads, double insert_fraction,
                    std::uint64_t total_inserts) {
  RunOptions ro;
  ro.threads = threads;
  ro.insert_fraction = insert_fraction;
  ro.total_inserts = total_inserts;
  ro.seed = config.seed;
  ro.segment_boundaries = {0.90 / config.fill, 1.0};
  RunResult result = RunMixedFill(map, ro);
  return Measured{result.OverallMops(), result.segments[1].MopsPerSec()};
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 6",
              "Throughput vs thread count for 100%/50%/10% insert workloads (6a overall, "
              "6b at 0.90-0.95 occupancy).",
              "basic cuckoo collapses with threads on writes; cuckoo+ (esp. fine-grained / "
              "TSX) keeps its edge; TBB-style trails cuckoo+ everywhere, worst at high load");

  const std::size_t bucket_log2 = config.BucketLog2(8);
  const std::uint64_t total = config.FillTarget((std::size_t{1} << bucket_log2) * 8);

  using Factory = std::function<Measured(int threads, double fraction)>;
  struct Config {
    std::string name;
    Factory measure;
  };
  std::vector<Config> tables;

  tables.push_back({"cuckoo", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, std::mutex, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(MemC3Options(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo w/ TSX", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                  DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, 8>
        map(MemC3Options(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock, DefaultHash<std::uint64_t>,
                  std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+ w/ TSX", [&](int threads, double fraction) {
    FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                  DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, 8>
        map(CuckooPlusOptions(bucket_log2));
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"cuckoo+ fine-grained", [&](int threads, double fraction) {
    CuckooMap<std::uint64_t, std::uint64_t>::Options o;
    o.initial_bucket_count_log2 = bucket_log2;
    o.auto_expand = false;
    CuckooMap<std::uint64_t, std::uint64_t> map(o);
    return MeasureMap(map, config, threads, fraction, total);
  }});
  tables.push_back({"TBB-style", [&](int threads, double fraction) {
    ConcurrentChainingMap<std::uint64_t, std::uint64_t> map(std::size_t{1} << bucket_log2);
    return MeasureMap(map, config, threads, fraction, total);
  }});

  ReportTable table({"workload", "table", "threads", "overall_mops", "high_occ_mops"});
  for (double fraction : {1.0, 0.5, 0.1}) {
    for (const Config& cfg : tables) {
      for (int threads = 1; threads <= config.threads; threads *= 2) {
        Measured m = cfg.measure(threads, fraction);
        table.Row()
            .Cell(FormatDouble(fraction * 100, 0) + "% insert")
            .Cell(cfg.name)
            .Cell(threads)
            .Cell(m.overall)
            .Cell(m.high);
      }
    }
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
