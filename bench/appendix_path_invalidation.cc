// Appendix B / Eq. 1: probability that a discovered cuckoo path is
// invalidated by concurrent writers,
//
//   P_invalid_max ~= 1 - ((N - L) / N)^(L (T - 1))
//
// Measured as path_invalidations / path_searches on the fine-grained table
// while T writers fill it, compared against the analytic bound evaluated at
// the observed maximum path length (BFS) and at MemC3's L = 250 (DFS).
//
// Paper example: N = 10M, T = 8, L = 250 -> P < 4.28%; with BFS L = 5 the
// bound drops to ~1.75e-5 — "an extremely rare event."
#include <cmath>
#include <cstdint>
#include <iostream>

#include "bench/common.h"
#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {
namespace {

double Eq1Bound(double n, double path_len, double threads) {
  return 1.0 - std::pow((n - path_len) / n, path_len * (threads - 1));
}

void Measure(const BenchConfig& config, SearchMode mode, ReportTable& table) {
  CuckooMap<std::uint64_t, std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = config.BucketLog2(8);
  o.auto_expand = false;
  o.search_mode = mode;
  CuckooMap<std::uint64_t, std::uint64_t> map(o);
  RunOptions ro;
  ro.threads = config.threads;
  ro.insert_fraction = 1.0;
  ro.total_inserts = config.FillTarget(map.SlotCount());
  ro.seed = config.seed;
  RunMixedFill(map, ro);
  MapStatsSnapshot stats = map.Stats();
  double n = static_cast<double>(map.SlotCount());
  double l = mode == SearchMode::kBfs ? static_cast<double>(map.MaxBfsDepth())
                                      : static_cast<double>(o.dfs_max_path_len);
  table.Row()
      .Cell(ToString(mode))
      .Cell(stats.path_searches)
      .Cell(stats.path_invalidations)
      .Cell(stats.PathInvalidationRate(), 6)
      .Cell(Eq1Bound(n, l, static_cast<double>(config.threads)), 6)
      .Cell(stats.MaxPathLength());
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Appendix B / Eq. 1",
              "Measured path-invalidation rate vs the analytic upper bound, BFS vs DFS.",
              "measured rate stays below the Eq. 1 bound; BFS bound is orders of "
              "magnitude below the DFS(L=250) bound");

  ReportTable table({"search", "path_searches", "invalidations", "measured_rate",
                     "eq1_bound", "max_path_len"});
  Measure(config, SearchMode::kBfs, table);
  Measure(config, SearchMode::kDfs, table);
  table.Print(std::cout, config.csv);

  if (!config.csv) {
    std::cout << "\npaper example bounds: N=10M T=8: L=250 -> " << FormatDouble(
                     Eq1Bound(1e7, 250, 8) * 100, 2)
              << "%  |  L=5 -> " << Eq1Bound(1e7, 5, 8) << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
