// Figure 9: 8-thread throughput vs. table occupancy for 4/8/16-way tables,
// under 100% / 50% / 10% insert workloads (optimized cuckoo with TSX
// elision). The fill is segmented into 0.05-wide occupancy bands so each
// band's throughput is reported — the paper's x-axis.
//
// Paper shape: write throughput decays with load for every associativity;
// 8-way wins overall; 16-way is worst at low load but overtakes 4-way above
// ~0.75 load (fewer displacements per insert); for 10% inserts low
// associativity wins until ~0.85.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"

namespace cuckoo {
namespace {

template <int B>
void MeasureLoadCurve(const BenchConfig& config, double fraction, ReportTable& table) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>,
                DefaultHash<std::uint64_t>, std::equal_to<std::uint64_t>, B>
      map(CuckooPlusOptions(config.BucketLog2(B)));
  RunOptions ro;
  ro.threads = config.threads;
  ro.insert_fraction = fraction;
  ro.total_inserts = config.FillTarget(map.SlotCount());
  ro.seed = config.seed;
  // Occupancy bands of width 0.05 from 0 to the fill target.
  ro.segment_boundaries.clear();
  for (double occupancy = 0.05; occupancy < config.fill - 1e-9; occupancy += 0.05) {
    ro.segment_boundaries.push_back(occupancy / config.fill);
  }
  ro.segment_boundaries.push_back(1.0);
  RunResult result = RunMixedFill(map, ro);
  for (const SegmentResult& segment : result.segments) {
    double occupancy_hi = segment.fill_fraction_hi * config.fill;
    if (occupancy_hi < 0.30 - 1e-9) {
      continue;  // the paper's x-axis starts at 0.3
    }
    table.Row()
        .Cell(FormatDouble(fraction * 100, 0) + "% insert")
        .Cell(std::to_string(B) + "-way")
        .Cell(occupancy_hi, 2)
        .Cell(segment.MopsPerSec());
  }
}

int Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintBanner(config, "Figure 9",
              "Throughput vs occupancy (0.05-wide bands) for 4/8/16-way tables, three "
              "workloads.",
              "throughput decays with load; 8-way best overall; 16-way worst at low load "
              "but crosses 4-way at high load for write-heavy mixes");

  ReportTable table({"workload", "associativity", "occupancy", "mops"});
  for (double fraction : {1.0, 0.5, 0.1}) {
    MeasureLoadCurve<4>(config, fraction, table);
    MeasureLoadCurve<8>(config, fraction, table);
    MeasureLoadCurve<16>(config, fraction, table);
  }
  table.Print(std::cout, config.csv);
  return 0;
}

}  // namespace
}  // namespace cuckoo

int main(int argc, char** argv) { return cuckoo::Run(argc, argv); }
