add_test([=[StressTest.MixedWorkloadSoak]=]  /root/repo/build-tsan/tests/stress_test [==[--gtest_filter=StressTest.MixedWorkloadSoak]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[StressTest.MixedWorkloadSoak]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-tsan/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS concurrency slow)
set(  stress_test_TESTS StressTest.MixedWorkloadSoak)
