# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan-ubsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("htm")
subdirs("cuckoo")
subdirs("baselines")
subdirs("benchkit")
subdirs("kvserver")
